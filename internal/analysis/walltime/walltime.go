// Package walltime forbids wall-clock and globally-seeded randomness inside
// the simulation tree: time.Now/Since/Sleep/... and any use of math/rand
// (including rand.New(rand.NewSource(...))) make runs depend on the host
// instead of the seed. Simulated code reads time from the sim engine's
// virtual clock and randomness from the named-stream SplitMix64 RNG
// (sim.NewRNG / RNG.Fork), which are stable across hosts and Go releases.
//
// Command-line front-ends (cmd/, examples/), the experiment harness
// (internal/harness), and the HTTP daemon layer (internal/serve), which
// legitimately measure real execution time for progress reporting and
// request timeouts, are exempt by path. Individual lines are exempted
// with `//vet:wallclock <justification>`.
package walltime

import (
	"go/ast"
	"go/types"
	"strings"

	"vprobe/internal/analysis/framework"
)

// Analyzer is the walltime determinism check.
var Analyzer = &framework.Analyzer{
	Name: "walltime",
	Doc: "forbid wall-clock time and global math/rand in simulation code " +
		"(suppress with //vet:wallclock)",
	Run:        run,
	Directives: []string{"wallclock"},
}

// bannedTime are the time-package functions that read or act on the host
// clock. Pure types and constructors (time.Duration, time.Unix) stay legal.
var bannedTime = map[string]bool{
	"Now": true, "Since": true, "Until": true, "Sleep": true,
	"After": true, "AfterFunc": true, "Tick": true,
	"NewTimer": true, "NewTicker": true,
}

func exempt(path string) bool {
	return strings.HasPrefix(path, "vprobe/cmd") ||
		strings.HasPrefix(path, "vprobe/examples") ||
		path == "vprobe/internal/harness" ||
		path == "vprobe/internal/serve"
}

func run(pass *framework.Pass) (any, error) {
	if exempt(pass.Pkg.Path()) {
		return nil, nil
	}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if bannedTime[fn.Name()] && !pass.Suppressed(sel.Pos(), "wallclock") {
					pass.Reportf(sel.Pos(),
						"wall-clock time.%s in simulation code; use the sim virtual clock, or //vet:wallclock for real measurement paths", fn.Name())
				}
			case "math/rand", "math/rand/v2":
				if !pass.Suppressed(sel.Pos(), "wallclock") {
					pass.Reportf(sel.Pos(),
						"rand.%s is not seed-stable across Go releases; use the named-stream sim RNG (sim.NewRNG / Fork)", fn.Name())
				}
			}
			return true
		})
	}
	return nil, nil
}
