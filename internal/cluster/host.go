package cluster

import (
	"context"
	"fmt"

	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/xen"
)

// Host is one hypervisor in the cluster: an independent xen.Hypervisor
// with its own NUMA topology, scheduling policy, seeded RNG, and event
// engine. Hosts share nothing, which is what lets the cluster advance them
// in parallel between cluster-level decisions.
type Host struct {
	Index int
	Name  string
	Top   *numa.Topology
	H     *xen.Hypervisor

	// VMs are the live (placed or migrating-in) VMs, in placement order.
	VMs []*VM
	// Placed counts cumulative placements, including migrations in.
	Placed int

	// Rebalance-interval counter snapshot (see intervalRemoteRatio).
	lastTotal, lastRemote float64

	// Incremental placement state (DESIGN.md §14). view is the persistent
	// snapshot the pipeline reads; it is refreshed — never rebuilt — when
	// the host is dirty. freeIdx mirrors view.FreePerNodeMB incrementally.
	view    HostView
	freeIdx *numa.FreeIndex
	// gen counts view refreshes. The score cache stores the generation a
	// cached (pipeline, host) score was computed at; a bumped generation
	// is the only thing that invalidates it.
	gen uint64
	// dirty flags an explicit placement delta (domain added, destroyed,
	// or activated) since the last refresh. A host also needs a refresh
	// when it carries VMs and its engine advanced past viewTime: running
	// guests move the view's LLC-pressure and remote-ratio fields.
	dirty  bool
	queued bool // on the cluster's refresh list
	// viewTime is the host-engine time the view reflects.
	viewTime sim.Time
	// ctrTotal/ctrRemote cache counterTotals at the last refresh, so the
	// rebalancer's interval ratio reads cached state instead of rescanning
	// every VCPU of every host per tick.
	ctrTotal, ctrRemote float64
}

// newHost builds and starts one host. Starting with zero domains is valid:
// the tickers arm and every PCPU idles until the first VM activates.
func newHost(index int, topoName string, kind sched.Kind, seed uint64) (*Host, error) {
	top, err := numa.Resolve(topoName)
	if err != nil {
		return nil, err
	}
	pol, err := sched.New(kind)
	if err != nil {
		return nil, err
	}
	cfg := xen.DefaultConfig()
	cfg.Seed = seed
	h := xen.New(top, pol, cfg)
	if err := h.Start(); err != nil {
		return nil, err
	}
	return &Host{
		Index: index,
		Name:  fmt.Sprintf("host%d", index),
		Top:   top,
		H:     h,
	}, nil
}

// initView seeds the host's persistent view: the static fields plus
// storage for the dynamic ones. The first refresh fills the rest.
func (ho *Host) initView(overcommit float64) {
	nodes := ho.Top.NumNodes()
	free := make([]int64, nodes)
	for n := 0; n < nodes; n++ {
		free[n] = ho.H.Alloc.FreeMB(numa.NodeID(n))
	}
	ho.freeIdx = numa.NewFreeIndex(free)
	ho.view = HostView{
		Index:         ho.Index,
		Name:          ho.Name,
		Nodes:         nodes,
		CPUs:          ho.Top.NumCPUs(),
		FreePerNodeMB: free,
		TotalMB:       ho.Top.TotalMemoryMB(),
		VCPUCap:       int(overcommit * float64(ho.Top.NumCPUs())),
		FreeIdx:       ho.freeIdx,
	}
}

// advanceTo runs the host's own event engine up to absolute cluster time
// t. Host clocks and the cluster clock share t=0, so this keeps every
// host's state current before a cluster-level decision reads it.
func (ho *Host) advanceTo(ctx context.Context, t sim.Time) error {
	if ho.H.Engine.Now() >= t {
		return nil
	}
	_, err := ho.H.RunContext(ctx, sim.Duration(t))
	return err
}

// guestVCPUs counts VCPUs of live domains (the CPU overcommit figure).
func (ho *Host) guestVCPUs() int {
	n := 0
	for _, vm := range ho.VMs {
		n += vm.Spec.VCPUs
	}
	return n
}

// settled reports that nothing on the host can change its view anymore:
// every PCPU is idle and no VCPU is runnable. The incremental engine
// uses it as the quiescence test for empty hosts — once settled, the
// cached view's pressure and counters are frozen until the cluster
// mutates the host again (wakeups of paused VCPUs are no-ops).
//
// The PCPU check is load-bearing, not belt-and-braces: a domain teardown
// can race the scheduler's redispatch, leaving a VCPU current on a PCPU
// with an armed quantum while its state reads blocked. The armed quantum
// later retires and re-runs the VCPU, so a host that looks idle by VCPU
// states alone may still be executing. "No current VCPU anywhere" is
// what guarantees no pending quantum can move the view.
//
//vprobe:hotpath
func (ho *Host) settled() bool {
	for _, p := range ho.H.PCPUs {
		if p.Current != nil {
			return false
		}
	}
	for _, v := range ho.H.AllVCPUs() {
		if v.Runnable() {
			return false
		}
	}
	return true
}

// removeVM drops a VM from the live list.
func (ho *Host) removeVM(vm *VM) {
	for i, v := range ho.VMs {
		if v == vm {
			ho.VMs = append(ho.VMs[:i], ho.VMs[i+1:]...)
			return
		}
	}
}

// llcPressure sums the current-phase LLC reference intensity (RPTI) of the
// host's active VCPUs, averaged per socket — the cluster-level analogue of
// the paper's per-socket pressure sum that periodical partitioning
// balances inside one host.
func (ho *Host) llcPressure() float64 {
	var sum float64
	for _, v := range ho.H.AllVCPUs() {
		if !v.Runnable() {
			continue
		}
		if ph := v.Phase(); ph != nil {
			sum += ph.RPTI
		}
	}
	return sum / float64(ho.Top.NumNodes())
}

// counterTotals sums lifetime memory-access counters over every VCPU the
// host has ever run (including departed domains, whose counters survive).
func (ho *Host) counterTotals() (total, remote float64) {
	for _, v := range ho.H.AllVCPUs() {
		total += v.Counters.Total()
		remote += v.Counters.Remote
	}
	return total, remote
}

// remoteRatio is the host's lifetime remote-access ratio.
func (ho *Host) remoteRatio() float64 {
	total, remote := ho.counterTotals()
	if total <= 0 {
		return 0
	}
	return remote / total
}

// intervalRemoteRatio returns the remote-access ratio since the previous
// call and advances the snapshot. The rebalancer uses this (not the
// lifetime ratio) so an old imbalance that was already fixed does not keep
// triggering migrations. It reads the counter totals cached at the last
// view refresh: refreshViews runs before every rebalance scan, and a host
// skipped by it is exactly a host whose counters have not moved.
func (ho *Host) intervalRemoteRatio() float64 {
	dt, dr := ho.ctrTotal-ho.lastTotal, ho.ctrRemote-ho.lastRemote
	ho.lastTotal, ho.lastRemote = ho.ctrTotal, ho.ctrRemote
	if dt <= 0 {
		return 0
	}
	return dr / dt
}

// freshView snapshots the host's placement-relevant state from scratch,
// exactly as the pre-incremental engine did on every arrival. The cached
// path must agree with it byte for byte; the -place-check shadow mode and
// the invalidation tests compare against it. overcommit is the cluster's
// VCPU overcommit factor, baked into the view so plugins stay pure
// functions of (spec, view).
func (ho *Host) freshView(overcommit float64) *HostView {
	//vet:alloc freshView is the from-scratch reference, reached from the hot path only via the diagnostic -place-check shadow mode
	v := &HostView{
		Index:       ho.Index,
		Name:        ho.Name,
		Nodes:       ho.Top.NumNodes(),
		CPUs:        ho.Top.NumCPUs(),
		TotalMB:     ho.Top.TotalMemoryMB(),
		GuestVCPUs:  ho.guestVCPUs(),
		VCPUCap:     int(overcommit * float64(ho.Top.NumCPUs())),
		VMs:         len(ho.VMs),
		LLCPressure: ho.llcPressure(),
		RemoteRatio: ho.remoteRatio(),
	}
	for n := 0; n < ho.Top.NumNodes(); n++ {
		free := ho.H.Alloc.FreeMB(numa.NodeID(n))
		//vet:alloc from-scratch snapshot allocation, shadow mode only
		v.FreePerNodeMB = append(v.FreePerNodeMB, free)
		v.FreeMB += free
	}
	return v
}
