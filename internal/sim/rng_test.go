package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same-seed streams diverged at step %d", i)
		}
	}
}

func TestRNGDifferentSeedsDiffer(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds coincided %d/100 times", same)
	}
}

func TestRNGZeroSeedUsable(t *testing.T) {
	r := NewRNG(0)
	if r.Uint64() == r.Uint64() {
		t.Fatal("zero-seeded RNG returned identical consecutive values")
	}
}

func TestForkStability(t *testing.T) {
	// Forking the same id from same-seed parents yields the same stream,
	// regardless of parent consumption.
	p1 := NewRNG(7)
	p2 := NewRNG(7)
	p2.Uint64() // consume some parent state
	p2.Uint64()
	c1 := p1.Fork(3)
	c2 := p2.Fork(3)
	// Fork derives from the seed state, which differs after consumption;
	// forks must at least be deterministic for identical parents.
	p3 := NewRNG(7)
	c3 := p3.Fork(3)
	for i := 0; i < 100; i++ {
		if c1.Uint64() != c3.Uint64() {
			t.Fatal("forks of identical parents diverged")
		}
	}
	_ = c2
}

func TestForkSiblingsDecorrelated(t *testing.T) {
	p := NewRNG(99)
	a := p.Fork(0)
	b := p.Fork(1)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("sibling forks coincided %d/100 times", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(5)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := NewRNG(6)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("Float64 mean = %v, want ~0.5", mean)
	}
}

func TestIntnRange(t *testing.T) {
	r := NewRNG(7)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.Intn(10)
		if v < 0 || v >= 10 {
			t.Fatalf("Intn(10) = %d", v)
		}
		seen[v] = true
	}
	if len(seen) != 10 {
		t.Fatalf("Intn(10) hit only %d distinct values in 1000 draws", len(seen))
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	check := func(seed uint64, n8 uint8) bool {
		n := int(n8%32) + 1
		p := NewRNG(seed).Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(8)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Exp(3.0)
	}
	mean := sum / n
	if math.Abs(mean-3.0) > 0.1 {
		t.Fatalf("Exp(3) mean = %v", mean)
	}
}

func TestNormalMoments(t *testing.T) {
	r := NewRNG(9)
	var s Summary
	for i := 0; i < 100000; i++ {
		s.Add(r.Normal(10, 2))
	}
	if math.Abs(s.Mean()-10) > 0.1 {
		t.Fatalf("Normal mean = %v", s.Mean())
	}
	if math.Abs(s.Stddev()-2) > 0.1 {
		t.Fatalf("Normal stddev = %v", s.Stddev())
	}
}

func TestJitterBounds(t *testing.T) {
	check := func(seed uint64) bool {
		r := NewRNG(seed)
		v := r.Jitter(100, 0.2)
		return v >= 80 && v <= 120
	}
	if err := quick.Check(check, nil); err != nil {
		t.Fatal(err)
	}
	// f out of range is clamped, result stays non-negative for f>1.
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if v := r.Jitter(50, 5); v < 0 || v > 100 {
			t.Fatalf("Jitter with clamped f out of bounds: %v", v)
		}
	}
}

func TestPickWeighted(t *testing.T) {
	r := NewRNG(11)
	w := []float64{0, 1, 3}
	counts := make([]int, 3)
	for i := 0; i < 40000; i++ {
		counts[r.Pick(w)]++
	}
	if counts[0] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.7 || ratio > 3.3 {
		t.Fatalf("weight-3 / weight-1 pick ratio = %v, want ~3", ratio)
	}
}

func TestPickDegenerate(t *testing.T) {
	r := NewRNG(12)
	if got := r.Pick([]float64{0, 0, 0}); got != 2 {
		t.Fatalf("all-zero weights Pick = %d, want last index", got)
	}
	if got := r.Pick([]float64{-1, 0, 5}); got != 2 {
		t.Fatalf("negative weights should be ignored; Pick = %d", got)
	}
}
