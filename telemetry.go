package vprobe

import (
	"io"
	"time"

	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
)

// TelemetryOptions configures NewTelemetry.
type TelemetryOptions struct {
	// Every is the sampling period in virtual time (default one simulated
	// second, aligned with the vProbe-family PMU sampling period).
	Every time.Duration
}

// Telemetry collects metric time series from one run. Create it with
// NewTelemetry, hand it to exactly one Config or ClusterConfig, and after
// the run export the final state with WritePrometheus and the per-sample
// series with WriteJSONL.
//
// All sampling happens in virtual time on the simulation's own event
// engine, so collection is deterministic: the same seed yields the same
// series byte for byte, and attaching telemetry never changes simulation
// results — reports and event streams stay byte-identical with telemetry
// on or off.
type Telemetry struct {
	sampler  *telemetry.Sampler
	attached bool
}

// NewTelemetry builds an empty collector.
func NewTelemetry(opts TelemetryOptions) *Telemetry {
	return &Telemetry{sampler: telemetry.NewSampler(
		telemetry.NewRegistry(), sim.Duration(opts.Every.Microseconds()))}
}

// attach claims the collector for one run; a second claim fails with
// ErrTelemetryAttached (the registry and ring hold one run's series).
func (t *Telemetry) attach() error {
	if t.attached {
		return ErrTelemetryAttached
	}
	t.attached = true
	return nil
}

// Samples is the number of snapshots taken so far (one per period).
func (t *Telemetry) Samples() int { return t.sampler.Rows() }

// WritePrometheus writes the final value of every series in Prometheus
// text exposition format.
func (t *Telemetry) WritePrometheus(w io.Writer) error {
	return t.sampler.Registry().WritePrometheus(w)
}

// WriteJSONL writes the sampled time series as JSON Lines: one object per
// simulated sampling period with a "t" key (virtual seconds) and one key
// per series.
func (t *Telemetry) WriteJSONL(w io.Writer) error {
	return t.sampler.WriteJSONL(w)
}
