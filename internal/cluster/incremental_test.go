package cluster

import (
	"fmt"
	"testing"

	"vprobe/internal/sim"
)

// The incremental-engine invariants (DESIGN.md §14), pinned op by op:
// every cluster-level mutation must dirty exactly the hosts it touched,
// a refresh must bump exactly the dirtied generations, and untouched
// hosts must never be revisited. The end-to-end agreement between the
// cached path and a full rescan is covered separately by the PlaceCheck
// run at the bottom of this file.

// mkCluster builds an unstarted cluster for driving the incremental
// engine by hand. New seeds every host view directly (without queuing),
// so generations start from a stable baseline and the refresh list
// starts empty.
func mkCluster(t *testing.T, hosts int) *Cluster {
	t.Helper()
	c, err := New(Config{Hosts: hosts, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return c
}

func gens(c *Cluster) []uint64 {
	out := make([]uint64, len(c.hosts))
	for i, ho := range c.hosts {
		out[i] = ho.gen
	}
	return out
}

// placeVM pushes one spec through the hot path exactly as admission
// does: incremental place, then placeOn onto the winner.
func placeVM(t *testing.T, c *Cluster, spec VMSpec) *VM {
	t.Helper()
	hv, plan, err := c.place(&spec)
	if err != nil {
		t.Fatalf("place %s: %v", spec.Name, err)
	}
	vm := &VM{ID: len(c.vms), Spec: spec, life: 30 * sim.Second}
	c.vms = append(c.vms, vm)
	c.placeOn(vm, c.hosts[hv.Index], plan, 1)
	if c.err != nil {
		t.Fatalf("placeOn %s: %v", spec.Name, c.err)
	}
	return vm
}

// checkGens asserts that exactly the hosts in bumped moved their view
// generation since base.
func checkGens(t *testing.T, c *Cluster, base []uint64, bumped map[int]bool) {
	t.Helper()
	for i, ho := range c.hosts {
		if bumped[i] {
			if ho.gen <= base[i] {
				t.Errorf("host%d: generation %d not bumped (base %d)", i, ho.gen, base[i])
			}
		} else if ho.gen != base[i] {
			t.Errorf("host%d: generation moved %d -> %d without a local delta",
				i, base[i], ho.gen)
		}
	}
}

func TestPlacementDirtiesOnlyTarget(t *testing.T) {
	c := mkCluster(t, 6)
	base := gens(c)
	vm := placeVM(t, c, VMSpec{Name: "vm000", MemoryMB: 2048, VCPUs: 2})
	target := vm.Host.Index
	for i, ho := range c.hosts {
		if i == target {
			if !ho.dirty || !ho.queued {
				t.Fatalf("target host%d not dirty/queued after placement", i)
			}
			continue
		}
		if ho.dirty || ho.queued {
			t.Fatalf("host%d dirtied by a placement on host%d", i, target)
		}
	}
	c.refreshViews()
	checkGens(t, c, base, map[int]bool{target: true})
}

func TestDepartureDirtiesOnlyHost(t *testing.T) {
	c := mkCluster(t, 6)
	vm := placeVM(t, c, VMSpec{Name: "vm000", MemoryMB: 2048, VCPUs: 2})
	c.refreshViews()
	base := gens(c)
	host := vm.Host.Index
	c.onDepart(vm)
	if c.err != nil {
		t.Fatal(c.err)
	}
	if vm.state != stateDeparted {
		t.Fatalf("vm state %v after depart", vm.state)
	}
	for i, ho := range c.hosts {
		if (i == host) != ho.dirty {
			t.Fatalf("host%d dirty=%v after departure from host%d", i, ho.dirty, host)
		}
	}
	c.refreshViews()
	checkGens(t, c, base, map[int]bool{host: true})
}

func TestMigrationDirtiesSourceAndTarget(t *testing.T) {
	c := mkCluster(t, 4)
	vm := placeVM(t, c, VMSpec{Name: "vm000", MemoryMB: 2048, VCPUs: 2})
	src := vm.Host.Index
	c.refreshViews()
	base := gens(c)
	dst := (src + 1) % len(c.hosts)
	hv, plan, err := c.pipeline.Place(&vm.Spec, c.liveView(c.hosts[dst]))
	if err != nil {
		t.Fatalf("restricted place on host%d: %v", dst, err)
	}
	if hv.Index != dst {
		t.Fatalf("restricted place picked host%d, want host%d", hv.Index, dst)
	}
	c.startMigration(vm, c.hosts[dst], plan)
	if c.err != nil {
		t.Fatal(c.err)
	}
	for i, ho := range c.hosts {
		want := i == src || i == dst
		if ho.dirty != want {
			t.Fatalf("host%d dirty=%v after migration host%d -> host%d",
				i, ho.dirty, src, dst)
		}
	}
	c.refreshViews()
	checkGens(t, c, base, map[int]bool{src: true, dst: true})
}

// TestSettledHostsLeaveRefreshList pins the quiescence rule: a host
// drops off the refresh list only once it is empty AND nothing on it is
// runnable, and from then on repeated refreshes never touch it again.
func TestSettledHostsLeaveRefreshList(t *testing.T) {
	c := mkCluster(t, 3)
	vm := placeVM(t, c, VMSpec{Name: "vm000", MemoryMB: 1024, VCPUs: 1})
	host := vm.Host
	c.onDepart(vm)
	if c.err != nil {
		t.Fatal(c.err)
	}
	c.refreshViews()
	if !host.settled() {
		t.Fatal("destroyed-before-running domain left the host unsettled")
	}
	if host.queued {
		t.Fatal("settled empty host still on the refresh list")
	}
	base := gens(c)
	for i := 0; i < 5; i++ {
		c.refreshViews()
	}
	checkGens(t, c, base, nil)
	if len(c.refreshList) != 0 {
		t.Fatalf("refresh list holds %d settled hosts", len(c.refreshList))
	}
}

// TestCachedViewMatchesFresh drives a mutation sequence and asserts
// every host's persistent view is field-for-field the from-scratch
// snapshot — the same equivalence -place-check enforces mid-run.
func TestCachedViewMatchesFresh(t *testing.T) {
	c := mkCluster(t, 4)
	a := placeVM(t, c, VMSpec{Name: "vm000", MemoryMB: 2048, VCPUs: 2})
	b := placeVM(t, c, VMSpec{Name: "vm001", MemoryMB: 4096, VCPUs: 4})
	placeVM(t, c, VMSpec{Name: "vm002", MemoryMB: 1024, VCPUs: 1})
	c.onDepart(a)
	dst := (b.Host.Index + 1) % len(c.hosts)
	if hv, plan, err := c.pipeline.Place(&b.Spec, c.liveView(c.hosts[dst])); err == nil && hv.Index == dst {
		c.startMigration(b, c.hosts[dst], plan)
	}
	if c.err != nil {
		t.Fatal(c.err)
	}
	c.refreshViews()
	for _, ho := range c.hosts {
		fresh := ho.freshView(c.cfg.Overcommit)
		if diff := diffViews(&ho.view, fresh); diff != "" {
			t.Errorf("%s cached view diverged: %s", ho.Name, diff)
		}
	}
}

// TestScoreCacheTracksInvalidation pins that a host refresh is what
// invalidates cached scores: as placements consume capacity step by
// step, the cached winner must keep matching what the generic pipeline
// picks over from-scratch views, through to the fleet filling up.
func TestScoreCacheTracksInvalidation(t *testing.T) {
	c := mkCluster(t, 4)
	spec := VMSpec{MemoryMB: 4096, VCPUs: 4}
	for i := 0; i < 32; i++ {
		hv, plan, err := c.place(&spec)
		hv2, _, err2 := c.pipeline.Place(&spec, refreshed(c))
		if (err == nil) != (err2 == nil) {
			t.Fatalf("step %d: cached err=%v, fresh err=%v", i, err, err2)
		}
		if err != nil {
			return // fleet full; cached path agreed with the rescan on that
		}
		if hv.Index != hv2.Index {
			t.Fatalf("step %d: cached winner host%d, fresh winner host%d",
				i, hv.Index, hv2.Index)
		}
		s := spec
		s.Name = fmt.Sprintf("vm%03d", i)
		vm := &VM{ID: len(c.vms), Spec: s, life: 30 * sim.Second}
		c.vms = append(c.vms, vm)
		c.placeOn(vm, c.hosts[hv.Index], plan, 1)
		if c.err != nil {
			t.Fatal(c.err)
		}
	}
	t.Fatal("32 4GB placements never filled a 4-host fleet")
}

// refreshed returns from-scratch views of every host, in index order.
func refreshed(c *Cluster) []*HostView {
	out := make([]*HostView, len(c.hosts))
	for i, ho := range c.hosts {
		out[i] = ho.freshView(c.cfg.Overcommit)
	}
	return out
}

// TestPlaceCheckAllMechanisms is the end-to-end cross-validation: a full
// run with every admission mechanism exercised — preemption, gangs,
// backfill, the descheduler, rebalancing — under -place-check, which
// stops the run on the first decision or view that diverges from a full
// rescan. Run at several worker counts, the results must also be
// byte-identical (the determinism acceptance criterion).
func TestPlaceCheckAllMechanisms(t *testing.T) {
	base := Config{
		Hosts:             4,
		Horizon:           120 * sim.Second,
		Seed:              17,
		ArrivalsPerSecond: 1.2,
		MeanLifetime:      30 * sim.Second,
		Preempt:           true,
		Gang:              true,
		GangFraction:      0.3,
		GangSize:          3,
		Backfill:          true,
		DeschedulePeriod:  15 * sim.Second,
		PlaceCheck:        true,
	}
	var wantRep, wantLog string
	for _, workers := range []int{1, 4, 8} {
		cfg := base
		cfg.Workers = workers
		rep, log := runWith(t, cfg)
		if wantRep == "" {
			wantRep, wantLog = rep.String(), log
			continue
		}
		if rep.String() != wantRep {
			t.Fatalf("report diverges at workers=%d", workers)
		}
		if log != wantLog {
			t.Fatalf("event log diverges at workers=%d", workers)
		}
	}
}
