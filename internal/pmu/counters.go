// Package pmu models virtualized performance-monitoring counters in the
// style of Perfctr-Xen (Nikolaev & Back, VEE'11): each VCPU owns a counter
// set that is saved and restored across context switches, so the values a
// scheduler reads are attributable to that VCPU alone.
//
// The counters tracked are exactly the ones vProbe's PMU data analyzer
// consumes: LLC references, LLC misses, instructions retired, cycles, and
// per-NUMA-node memory access counts (the N(vc,i) of Eq. 1).
package pmu

import (
	"fmt"

	"vprobe/internal/numa"
)

// Counters is a monotonically accumulating counter set. Values are float64
// because the performance model produces fractional expected counts; the
// hardware analogy is unchanged (sums over a window).
type Counters struct {
	Instructions float64
	Cycles       float64
	LLCRef       float64
	LLCMiss      float64
	// Node[i] is the number of memory accesses served by node i.
	Node []float64
	// Remote is the number of accesses served by a node other than the
	// one the VCPU was running on at access time.
	Remote float64
}

// NewCounters returns a zeroed counter set for a machine with nodes nodes.
func NewCounters(nodes int) *Counters {
	return &Counters{Node: make([]float64, nodes)}
}

// Add accumulates d into c. The node vectors must have equal length.
func (c *Counters) Add(d Delta) {
	c.Instructions += d.Instructions
	c.Cycles += d.Cycles
	c.LLCRef += d.LLCRef
	c.LLCMiss += d.LLCMiss
	c.Remote += d.Remote
	for i := range d.Node {
		c.Node[i] += d.Node[i]
	}
}

// Total returns the total memory access count (== LLC misses in this
// model: every miss is a memory access).
func (c *Counters) Total() float64 { return c.LLCMiss }

// Snapshot returns a deep copy of the counters.
func (c *Counters) Snapshot() Counters {
	out := *c
	//vet:alloc Snapshot is a deep copy by contract, taken once per sampling period
	out.Node = append([]float64(nil), c.Node...)
	return out
}

// Delta is the change in a counter set over a window; structurally the
// same fields as Counters.
type Delta struct {
	Instructions float64
	Cycles       float64
	LLCRef       float64
	LLCMiss      float64
	Node         []float64
	Remote       float64
}

// RPTI returns LLC references per thousand instructions over the window,
// i.e. the paper's Eq. 2 with α = 1000. Zero instructions yield zero.
func (d Delta) RPTI() float64 {
	if d.Instructions <= 0 {
		return 0
	}
	return d.LLCRef / d.Instructions * 1000
}

// Pressure returns the paper's LLC access pressure R = LLCref/Instr * α.
func (d Delta) Pressure(alpha float64) float64 {
	if d.Instructions <= 0 {
		return 0
	}
	return d.LLCRef / d.Instructions * alpha
}

// MissRate returns LLC misses / references, or 0 with no references.
func (d Delta) MissRate() float64 {
	if d.LLCRef <= 0 {
		return 0
	}
	return d.LLCMiss / d.LLCRef
}

// IPC returns instructions per cycle over the window.
func (d Delta) IPC() float64 {
	if d.Cycles <= 0 {
		return 0
	}
	return d.Instructions / d.Cycles
}

// AffinityNode returns the node with the maximum access count (Eq. 1),
// breaking ties toward the lowest id. With no accesses at all it returns
// numa.NoNode so callers can distinguish "no signal".
func (d Delta) AffinityNode() numa.NodeID {
	best := numa.NoNode
	var bestVal float64
	for i, v := range d.Node {
		if v > 0 && (best == numa.NoNode || v > bestVal) {
			best = numa.NodeID(i)
			bestVal = v
		}
	}
	return best
}

// RemoteRatio returns remote accesses / total accesses, or 0 with none.
func (d Delta) RemoteRatio() float64 {
	var total float64
	for _, v := range d.Node {
		total += v
	}
	if total <= 0 {
		return 0
	}
	return d.Remote / total
}

// String summarises the window.
func (d Delta) String() string {
	return fmt.Sprintf("instr=%.3g llcref=%.3g miss=%.3g remote=%.0f%% rpti=%.2f",
		d.Instructions, d.LLCRef, d.LLCMiss, 100*d.RemoteRatio(), d.RPTI())
}

// Sampler extracts per-window deltas from an accumulating counter set, the
// way vProbe samples each VCPU at the end of every sampling period.
type Sampler struct {
	last Counters
}

// NewSampler returns a sampler whose first Sample covers everything
// accumulated so far on the given counter set.
func NewSampler(nodes int) *Sampler {
	return &Sampler{last: Counters{Node: make([]float64, nodes)}}
}

// Sample returns the delta since the previous Sample (or since counter
// creation) and advances the window.
func (s *Sampler) Sample(cur *Counters) Delta {
	d := Delta{
		Instructions: cur.Instructions - s.last.Instructions,
		Cycles:       cur.Cycles - s.last.Cycles,
		LLCRef:       cur.LLCRef - s.last.LLCRef,
		LLCMiss:      cur.LLCMiss - s.last.LLCMiss,
		Remote:       cur.Remote - s.last.Remote,
		//vet:alloc per-period delta snapshot; sampling cadence is 1s simulated, not per quantum
		Node: make([]float64, len(cur.Node)),
	}
	for i := range cur.Node {
		d.Node[i] = cur.Node[i] - s.last.Node[i]
	}
	s.last = cur.Snapshot()
	return d
}
