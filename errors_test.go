package vprobe_test

import (
	"errors"
	"strings"
	"testing"

	"vprobe"
	"vprobe/internal/spec"
)

// publicSentinels is the audit list of every sentinel the public API
// exposes. Adding a sentinel without extending this list fails the audit
// below; internal/serve has a matching audit that every entry here maps
// to a deliberate HTTP status.
var publicSentinels = map[string]error{
	"ErrUnknownTopology":   vprobe.ErrUnknownTopology,
	"ErrUnknownScheduler":  vprobe.ErrUnknownScheduler,
	"ErrNoFreeVCPU":        vprobe.ErrNoFreeVCPU,
	"ErrAlreadyStarted":    vprobe.ErrAlreadyStarted,
	"ErrUnknownPolicy":     vprobe.ErrUnknownPolicy,
	"ErrTelemetryAttached": vprobe.ErrTelemetryAttached,
	"ErrAlreadyRun":        vprobe.ErrAlreadyRun,
	"ErrSpecVersion":       vprobe.ErrSpecVersion,
	"ErrInvalidSpec":       vprobe.ErrInvalidSpec,
}

// TestSentinelAudit asserts the sentinel set is well formed: non-nil,
// pairwise distinct, and package-prefixed so wrapped messages read
// sensibly.
func TestSentinelAudit(t *testing.T) {
	for name, err := range publicSentinels {
		if err == nil {
			t.Errorf("%s is nil", name)
			continue
		}
		msg := err.Error()
		if !strings.HasPrefix(msg, "vprobe: ") && !strings.HasPrefix(msg, "spec: ") {
			t.Errorf("%s message %q lacks a package prefix", name, msg)
		}
		for other, oerr := range publicSentinels {
			if name != other && errors.Is(err, oerr) {
				t.Errorf("%s matches %s; sentinels must be distinct", name, other)
			}
		}
	}
}

// TestSpecSentinelAliases pins the re-exports: matching against the
// public names and against the spec package's own sentinels must be
// interchangeable.
func TestSpecSentinelAliases(t *testing.T) {
	if !errors.Is(vprobe.ErrInvalidSpec, spec.ErrInvalid) ||
		!errors.Is(spec.ErrInvalid, vprobe.ErrInvalidSpec) {
		t.Error("ErrInvalidSpec is not spec.ErrInvalid")
	}
	if !errors.Is(vprobe.ErrSpecVersion, spec.ErrVersion) ||
		!errors.Is(spec.ErrVersion, vprobe.ErrSpecVersion) {
		t.Error("ErrSpecVersion is not spec.ErrVersion")
	}
	err := spec.ScenarioV1{}.Validate() // no VMs
	if !errors.Is(err, vprobe.ErrInvalidSpec) {
		t.Errorf("spec validation error %v does not match the public alias", err)
	}
}

// TestRunServerShimSentinel asserts the deprecated shim's unknown-kind
// failure wraps the spec sentinel rather than a bespoke error.
func TestRunServerShimSentinel(t *testing.T) {
	sim, err := vprobe.NewSimulator(vprobe.Config{})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.AddVM(vprobe.VMConfig{Name: "x", MemoryMB: 1024, VCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.RunServer("etcd", 1); !errors.Is(err, vprobe.ErrInvalidSpec) { //vet:deprecated shim's own test
		t.Fatalf("RunServer(etcd) = %v, want ErrInvalidSpec", err)
	}
}
