package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"time"

	"vprobe"
	"vprobe/internal/spec"
)

// State is a run's lifecycle phase.
type State string

// Run states. A run is terminal in StateDone, StateFailed, or
// StateCancelled.
const (
	StateQueued    State = "queued"
	StateRunning   State = "running"
	StateDone      State = "done"
	StateFailed    State = "failed"
	StateCancelled State = "cancelled"
)

// Terminal reports whether the state is final.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCancelled
}

// Run is one accepted simulation request and — once finished — its
// immutable result. Completed runs are cached by Key and served again
// byte-for-byte: determinism guarantees a re-run would produce exactly
// these bytes.
type Run struct {
	ID   string `json:"id"`
	Kind string `json:"kind"` // "scenario" or "cluster"
	Key  string `json:"key"`

	mu     sync.Mutex
	cond   *sync.Cond // broadcast on event growth and state changes
	state  State
	err    string
	status int // HTTP status of the failure, when state == StateFailed
	cancel context.CancelFunc

	events    []byte // JSONL, grows while running
	report    string // rendered report text
	summary   any    // JSON summary of the report
	telemetry []byte // JSONL time series, set at completion
	prom      []byte // Prometheus text exposition, set at completion
	traced    bool   // the spec asked for span tracing
	spans     []byte // JSONL span stream, set at completion when traced
	chrome    []byte // Chrome trace-event JSON, set at completion when traced
}

func newRun(id, kind, key string) *Run {
	rn := &Run{ID: id, Kind: kind, Key: key, state: StateQueued}
	rn.cond = sync.NewCond(&rn.mu)
	return rn
}

// snapshot returns the JSON view of the run's current state.
func (rn *Run) snapshot() map[string]any {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	v := map[string]any{
		"id":    rn.ID,
		"kind":  rn.Kind,
		"key":   rn.Key,
		"state": rn.state,
	}
	if rn.err != "" {
		v["error"] = rn.err
	}
	if rn.state == StateDone {
		v["report"] = rn.report
		v["summary"] = rn.summary
	}
	return v
}

// setRunning publishes the transition out of the queue.
func (rn *Run) setRunning(cancel context.CancelFunc) {
	rn.mu.Lock()
	rn.state = StateRunning
	rn.cancel = cancel
	rn.cond.Broadcast()
	rn.mu.Unlock()
}

// finish records a terminal state and wakes every follower.
func (rn *Run) finish(state State, err error) {
	rn.mu.Lock()
	rn.state = state
	if err != nil {
		rn.err = err.Error()
		rn.status = statusFor(err)
	}
	rn.cancel = nil
	rn.cond.Broadcast()
	rn.mu.Unlock()
}

// appendEvent adds one JSONL line to the event stream.
func (rn *Run) appendEvent(line []byte) {
	rn.mu.Lock()
	rn.events = append(rn.events, line...)
	rn.events = append(rn.events, '\n')
	rn.cond.Broadcast()
	rn.mu.Unlock()
}

// requestCancel aborts a live run; it reports whether there was anything
// to cancel.
func (rn *Run) requestCancel() bool {
	rn.mu.Lock()
	defer rn.mu.Unlock()
	if rn.state.Terminal() {
		return false
	}
	if rn.cancel != nil {
		rn.cancel()
	} else {
		// Still queued: mark so execute() drops it before starting.
		rn.state = StateCancelled
		rn.cond.Broadcast()
	}
	return true
}

// registry tracks runs by ID and caches completed ones by canonical key.
type registry struct {
	mu    sync.Mutex
	next  int
	byID  map[string]*Run
	byKey map[string]*Run // completed (StateDone) runs only
}

func newRegistry() *registry {
	return &registry{byID: make(map[string]*Run), byKey: make(map[string]*Run)}
}

// lookup returns the cached completed run for key, when there is one.
func (g *registry) lookup(key string) (*Run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rn, ok := g.byKey[key]
	return rn, ok
}

// get returns the run with the given ID.
func (g *registry) get(id string) (*Run, bool) {
	g.mu.Lock()
	defer g.mu.Unlock()
	rn, ok := g.byID[id]
	return rn, ok
}

// create registers a fresh run for the key.
func (g *registry) create(kind, key string) *Run {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.next++
	rn := newRun(fmt.Sprintf("run-%06d", g.next), kind, key)
	g.byID[rn.ID] = rn
	return rn
}

// complete enters a finished run into the result cache. The first
// completion wins; concurrent duplicates stay addressable by ID.
func (g *registry) complete(rn *Run) {
	g.mu.Lock()
	if _, ok := g.byKey[rn.Key]; !ok {
		g.byKey[rn.Key] = rn
	}
	g.mu.Unlock()
}

// samplePeriod is the virtual-time telemetry sampling interval for every
// served run. It is part of the cache contract: a fixed period keeps the
// exported time series a pure function of (spec, seed), and it is short
// enough that even sub-second test horizons produce samples.
const samplePeriod = 100 * time.Millisecond

// jsonEvent is the JSONL wire form of one vprobe.Event, matching the
// vprobe-trace -json stream: virtual time in seconds plus the typed
// identity fields; empty identities are omitted.
type jsonEvent struct {
	T      float64 `json:"t"`
	Kind   string  `json:"kind"`
	VCPU   int     `json:"vcpu"`
	Node   int     `json:"node"`
	App    string  `json:"app,omitempty"`
	Host   string  `json:"host,omitempty"`
	VM     string  `json:"vm,omitempty"`
	Detail string  `json:"detail"`
}

// eventSink streams typed events into the run's JSONL buffer.
func (rn *Run) eventSink() vprobe.EventSink {
	return vprobe.EventFunc(func(ev vprobe.Event) {
		line, err := json.Marshal(jsonEvent{
			T:      ev.At.Seconds(),
			Kind:   string(ev.Kind),
			VCPU:   ev.VCPU,
			Node:   ev.Node,
			App:    ev.App,
			Host:   ev.Host,
			VM:     ev.VM,
			Detail: ev.Detail,
		})
		if err != nil {
			return // plain data cannot fail to marshal
		}
		rn.appendEvent(line)
	})
}

// acquireSlot blocks until a worker slot frees up or ctx is cancelled,
// mirroring how the harness pool bounds experiment fan-out. The release
// func is nil when acquisition failed.
func (s *Server) acquireSlot(ctx context.Context) (release func(), err error) {
	select {
	case s.slots <- struct{}{}:
		s.metrics.addActive(1)
		return func() {
			<-s.slots
			s.metrics.addActive(-1)
		}, nil
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

// execute runs one compiled request to completion on a worker slot. ctx
// is the request context (sync) or the server's base context (async); a
// server-enforced timeout is layered on top. On success the run enters
// the result cache.
func (s *Server) execute(ctx context.Context, rn *Run, body func(ctx context.Context, rn *Run) error) {
	release, err := s.acquireSlot(ctx)
	if err != nil {
		rn.finish(StateCancelled, fmt.Errorf("cancelled waiting for a worker slot: %w", err))
		return
	}
	defer release()
	rn.mu.Lock()
	if rn.state.Terminal() { // cancelled while queued
		rn.mu.Unlock()
		return
	}
	rn.mu.Unlock()

	runCtx, cancel := context.WithTimeout(ctx, s.opts.RunTimeout)
	defer cancel()
	rn.setRunning(cancel)

	if err := body(runCtx, rn); err != nil {
		state := StateFailed
		if runCtx.Err() != nil {
			state = StateCancelled
		}
		rn.finish(state, err)
		if state == StateCancelled {
			s.metrics.inc(s.metrics.runsCanc)
		} else {
			s.metrics.inc(s.metrics.runsFail)
		}
		return
	}
	rn.finish(StateDone, nil)
	s.runs.complete(rn)
	s.metrics.inc(s.metrics.runsDone)
}

// scenarioBody builds the run body for a ScenarioV1: compile through the
// spec front door, attach the event stream and a telemetry collector, run
// to the horizon, and store the rendered artifacts.
func (s *Server) scenarioBody(sp spec.ScenarioV1) func(ctx context.Context, rn *Run) error {
	return func(ctx context.Context, rn *Run) error {
		tele := vprobe.NewTelemetry(vprobe.TelemetryOptions{Every: samplePeriod})
		sim, horizon, err := vprobe.CompileScenario(sp, vprobe.CompileOptions{
			Events:    rn.eventSink(),
			Telemetry: tele,
		})
		if err != nil {
			return err
		}
		rep, err := sim.RunContext(ctx, horizon)
		if err != nil {
			return err
		}
		return rn.storeResult(rep.String(), scenarioSummary(rep), tele, sim.Tracing())
	}
}

// clusterBody is scenarioBody's cluster twin.
func (s *Server) clusterBody(sp spec.ClusterV1) func(ctx context.Context, rn *Run) error {
	return func(ctx context.Context, rn *Run) error {
		tele := vprobe.NewTelemetry(vprobe.TelemetryOptions{Every: samplePeriod})
		cfg, err := vprobe.CompileCluster(sp, vprobe.CompileOptions{
			Events:    rn.eventSink(),
			Telemetry: tele,
		})
		if err != nil {
			return err
		}
		rep, err := vprobe.RunCluster(ctx, cfg)
		if err != nil {
			return err
		}
		return rn.storeResult(rep.String(), clusterSummary(rep), tele, cfg.Spans)
	}
}

// storeResult renders the run's immutable artifacts. spans is nil for
// untraced runs — the spans and explain endpoints then answer 404.
func (rn *Run) storeResult(report string, summary any, tele *vprobe.Telemetry, spans *vprobe.Tracing) error {
	var series, prom bytes.Buffer
	if err := tele.WriteJSONL(&series); err != nil {
		return fmt.Errorf("serve: telemetry export: %w", err)
	}
	if err := tele.WritePrometheus(&prom); err != nil {
		return fmt.Errorf("serve: telemetry export: %w", err)
	}
	var spanJSONL, chrome bytes.Buffer
	if spans != nil {
		if err := spans.WriteSpans(&spanJSONL); err != nil {
			return fmt.Errorf("serve: span export: %w", err)
		}
		if err := spans.WriteChromeTrace(&chrome); err != nil {
			return fmt.Errorf("serve: span export: %w", err)
		}
	}
	rn.mu.Lock()
	rn.report = report
	rn.summary = summary
	rn.telemetry = series.Bytes()
	rn.prom = prom.Bytes()
	if spans != nil {
		rn.traced = true
		rn.spans = spanJSONL.Bytes()
		rn.chrome = chrome.Bytes()
	}
	rn.mu.Unlock()
	return nil
}

// scenarioSummary is the JSON-friendly digest of a scenario report.
func scenarioSummary(rep *vprobe.Report) any {
	apps := make([]map[string]any, 0, len(rep.Apps))
	for _, a := range rep.Apps {
		apps = append(apps, map[string]any{
			"vm":                a.VM,
			"app":               a.App,
			"finished":          a.Finished,
			"exec_seconds":      a.ExecTime.Seconds(),
			"remote_ratio":      a.RemoteRatio,
			"page_remote_ratio": a.PageRemoteRatio,
			"requests":          a.Requests,
			"node_moves":        a.NodeMoves,
		})
	}
	return map[string]any{
		"scheduler":         string(rep.Scheduler),
		"end_seconds":       rep.End.Seconds(),
		"all_finished":      rep.AllFinished(),
		"total_requests":    rep.TotalRequests(),
		"overhead_fraction": rep.OverheadFraction,
		"apps":              apps,
	}
}

// clusterSummary is the JSON-friendly digest of a cluster report.
func clusterSummary(rep *vprobe.ClusterReport) any {
	return map[string]any{
		"policy":          string(rep.Policy),
		"scheduler":       string(rep.Scheduler),
		"hosts":           rep.Hosts,
		"horizon_seconds": rep.Horizon.Seconds(),
		"arrivals":        rep.Arrivals,
		"placed":          rep.Placed,
		"retries":         rep.Retries,
		"rejected":        rep.Rejected,
		"departed":        rep.Departed,
		"migrations":      rep.Migrations,
		"rejection_rate":  rep.RejectionRate,
		"remote_ratio":    rep.RemoteRatio,
		"utilization":     rep.Utilization,
	}
}
