// Command vprobe-sim runs the paper-reproduction experiments and prints
// their tables.
//
// Usage:
//
//	vprobe-sim [-scale f] [-seed n] [-list] [experiment ...]
//
// Without arguments it runs every registered experiment. Experiment ids
// match the paper's artifacts: table1, fig1, fig3, fig4, fig5, fig6, fig7,
// fig8, table3, plus the ablation experiments.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"vprobe/internal/experiments"
)

func main() {
	scale := flag.Float64("scale", experiments.DefaultScale,
		"workload scale factor (1.0 = paper-sized runs)")
	seed := flag.Uint64("seed", 1, "simulation seed")
	list := flag.Bool("list", false, "list experiments and exit")
	out := flag.String("out", "", "directory for CSV/JSON result exports")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: %s [flags] [experiment ...]\n\nexperiments:\n", os.Args[0])
		for _, e := range experiments.All() {
			fmt.Fprintf(os.Stderr, "  %-18s %s\n", e.ID, e.Title)
		}
		fmt.Fprintln(os.Stderr, "\nflags:")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, e := range experiments.All() {
			fmt.Printf("%-18s %s\n    paper: %s\n", e.ID, e.Title, e.Paper)
		}
		return
	}

	ids := flag.Args()
	if len(ids) == 0 {
		ids = experiments.IDs()
	}
	opts := experiments.Options{Seed: *seed, Scale: *scale}
	failed := false
	for _, id := range ids {
		e, err := experiments.ByID(id)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			failed = true
			continue
		}
		start := time.Now()
		res, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "%s: %v\n", id, err)
			failed = true
			continue
		}
		fmt.Print(res.String())
		if *out != "" {
			paths, err := res.Export(*out)
			if err != nil {
				fmt.Fprintf(os.Stderr, "%s: export: %v\n", id, err)
				failed = true
			} else {
				fmt.Printf("(exported %v)\n", paths)
			}
		}
		fmt.Printf("(%s ran in %.1fs)\n\n", id, time.Since(start).Seconds())
	}
	if failed {
		os.Exit(1)
	}
}
