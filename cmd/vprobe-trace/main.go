// Command vprobe-trace runs a small scenario with scheduling trace output,
// showing quantum dispatches, blocks/wakes, migrations, guest thread
// parking, and app completions.
//
// Usage:
//
//	vprobe-trace [-sched vprobe] [-seconds 3] [-apps soplex,libquantum]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"vprobe"
)

func main() {
	schedName := flag.String("sched", "vprobe", "scheduler: credit|vprobe|vcpu-p|lb|brm")
	seconds := flag.Float64("seconds", 2, "virtual seconds to trace")
	apps := flag.String("apps", "soplex,libquantum", "comma-separated catalog apps for the traced VM")
	seed := flag.Uint64("seed", 1, "simulation seed")
	flag.Parse()

	sim, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler: vprobe.Scheduler(*schedName),
		Seed:      *seed,
		Events: vprobe.EventFunc(func(ev vprobe.Event) {
			fmt.Printf("%12.6f  %-14s %s\n", ev.At.Seconds(), ev.Kind, ev.Detail)
		}),
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	vm, err := sim.AddVM(vprobe.VMConfig{
		Name: "traced", MemoryMB: 8 * 1024, VCPUs: 8,
		Memory: vprobe.MemStripe, FillGuestIdle: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, app := range strings.Split(*apps, ",") {
		if err := vm.RunApp(strings.TrimSpace(app)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	burner, err := sim.AddVM(vprobe.VMConfig{Name: "burner", MemoryMB: 1024, VCPUs: 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; i < 8; i++ {
		if err := burner.RunApp("hungry"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	report, err := sim.Run(time.Duration(*seconds * float64(time.Second)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fmt.Println()
	fmt.Print(report)
}
