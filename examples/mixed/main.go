// Mixed scenario: a heterogeneous consolidation — an LP solver, a quantum
// simulator, a network-flow solver, and a lattice-QCD code share the
// machine with interference. The example shows how the PMU data analyzer
// classifies each VCPU (the paper's LLC-T / LLC-FI / LLC-FR taxonomy), and
// demonstrates the two §VI extensions: dynamic bounds and page migration.
//
//	go run ./examples/mixed
package main

import (
	"fmt"
	"log"
	"time"

	"vprobe"
)

func main() {
	fmt.Println("mixed workload: per-VCPU classification and extension ablation")
	fmt.Println()

	configs := []struct {
		label string
		cfg   vprobe.Config
	}{
		{"vProbe (paper bounds 3/20)", vprobe.Config{Scheduler: vprobe.SchedulerVProbe, Seed: 5}},
		{"vProbe + dynamic bounds (§VI)", vprobe.Config{Scheduler: vprobe.SchedulerVProbe, Seed: 5, DynamicBounds: true}},
		{"vProbe + page migration (§VI)", vprobe.Config{Scheduler: vprobe.SchedulerVProbe, Seed: 5, PageMigration: true}},
	}
	for _, c := range configs {
		mean, classes, err := run(c.cfg)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-32s mean exec %6.1fs   classes: %s\n", c.label, mean.Seconds(), classes)
	}
}

func run(cfg vprobe.Config) (time.Duration, string, error) {
	sim, err := vprobe.NewSimulator(cfg)
	if err != nil {
		return 0, "", err
	}
	vm1, err := sim.AddVM(vprobe.VMConfig{
		Name: "mix-vm", MemoryMB: 15 * 1024, VCPUs: 8,
		Memory: vprobe.MemStripe, FillGuestIdle: true,
	})
	if err != nil {
		return 0, "", err
	}
	for _, app := range []string{"soplex", "libquantum", "mcf", "milc"} {
		if err := vm1.RunApp(app); err != nil {
			return 0, "", err
		}
	}
	vm2, err := sim.AddVM(vprobe.VMConfig{
		Name: "noise-vm", MemoryMB: 5 * 1024, VCPUs: 8, FillGuestIdle: true,
	})
	if err != nil {
		return 0, "", err
	}
	for _, app := range []string{"povray", "ep", "lu", "mg"} {
		if err := vm2.RunApp(app); err != nil {
			return 0, "", err
		}
	}
	burner, err := sim.AddVM(vprobe.VMConfig{Name: "burner", MemoryMB: 1024, VCPUs: 8})
	if err != nil {
		return 0, "", err
	}
	for i := 0; i < 8; i++ {
		if err := burner.RunApp("hungry"); err != nil {
			return 0, "", err
		}
	}

	report, err := sim.RunWatching(20*time.Minute, vm1)
	if err != nil {
		return 0, "", err
	}

	// Read back the analyzer's classification of the mix VM's VCPUs.
	classes := ""
	for _, v := range vm1.Domain().VCPUs {
		if v.App == nil || v.App.Endless() {
			continue
		}
		if classes != "" {
			classes += ", "
		}
		classes += fmt.Sprintf("%s=%s", v.App.Name, v.Type)
	}
	return report.MeanExecTime("mix-vm"), classes, err
}
