#!/bin/sh
# serve-smoke.sh boots vprobe-serve, runs the same scenario twice, and
# checks the daemon's core contracts from the outside:
#
#   1. the first POST completes with state "done";
#   2. the re-POST is answered from the determinism-keyed cache, and the
#      full response — report included — is byte-identical;
#   3. the run's event stream and telemetry re-download byte-identically;
#   4. the run's /metrics and the server's own /metrics parse as
#      Prometheus text exposition (via vprobe-metrics check).
#
# Used by `make smoke-serve` and the CI "Serve API smoke" step.
set -eu

ADDR="${VPROBE_SERVE_ADDR:-127.0.0.1:18080}"
TMP="$(mktemp -d)"
trap 'kill $SERVE_PID 2>/dev/null || true; rm -rf "$TMP"' EXIT

go build -o "$TMP/vprobe-serve" ./cmd/vprobe-serve
"$TMP/vprobe-serve" -addr "$ADDR" &
SERVE_PID=$!

for _ in $(seq 1 100); do
    if curl -sf "http://$ADDR/healthz" >/dev/null 2>&1; then break; fi
    sleep 0.1
done
curl -sf "http://$ADDR/healthz" >/dev/null

SPEC='{"scheduler":"vprobe","horizon":"2s","vms":[{"name":"vm0","memory_mb":2048,"vcpus":2,"apps":[{"name":"soplex"},{"name":"mcf"}]}]}'

curl -sf -d "$SPEC" "http://$ADDR/v1/simulations" >"$TMP/run1.json"
ID=$(jq -r .id "$TMP/run1.json")
STATE=$(jq -r .state "$TMP/run1.json")
[ "$STATE" = "done" ] || { echo "serve-smoke: first run state $STATE" >&2; exit 1; }

curl -sf "http://$ADDR/v1/runs/$ID/events" >"$TMP/events1.jsonl"
curl -sf "http://$ADDR/v1/runs/$ID/telemetry" >"$TMP/telemetry1.jsonl"
curl -sf "http://$ADDR/v1/runs/$ID/metrics" >"$TMP/run.prom"

curl -sf -d "$SPEC" "http://$ADDR/v1/simulations" >"$TMP/run2.json"
jq -e '.cached == true' "$TMP/run2.json" >/dev/null || {
    echo "serve-smoke: identical spec missed the cache" >&2; exit 1; }
# Normalize both responses the same way (sorted keys, cached flag
# dropped); the remainder — report text included — must match exactly.
jq -S 'del(.cached)' "$TMP/run1.json" >"$TMP/run1-norm.json"
jq -S 'del(.cached)' "$TMP/run2.json" >"$TMP/run2-norm.json"
diff "$TMP/run1-norm.json" "$TMP/run2-norm.json" >/dev/null || {
    echo "serve-smoke: cached response differs from the original" >&2; exit 1; }

curl -sf "http://$ADDR/v1/runs/$ID/events" >"$TMP/events2.jsonl"
curl -sf "http://$ADDR/v1/runs/$ID/telemetry" >"$TMP/telemetry2.jsonl"
diff "$TMP/events1.jsonl" "$TMP/events2.jsonl" >/dev/null || {
    echo "serve-smoke: event stream not byte-identical" >&2; exit 1; }
diff "$TMP/telemetry1.jsonl" "$TMP/telemetry2.jsonl" >/dev/null || {
    echo "serve-smoke: telemetry not byte-identical" >&2; exit 1; }

go run ./cmd/vprobe-metrics check "$TMP/run.prom"
curl -sf "http://$ADDR/metrics" >"$TMP/serve.prom"
go run ./cmd/vprobe-metrics check "$TMP/serve.prom"

echo "serve-smoke: OK (run $ID cached and byte-identical)"
