// Package harness runs simulation work across a bounded pool of workers
// with deterministic result assembly and structured progress events.
//
// The pool is deliberately simple: Map collects results by input index, so
// the output of a parallel run is byte-identical to a sequential run
// regardless of worker count or completion order. Determinism then rests on
// two properties the rest of the repository guarantees: every simulation
// owns its seeded RNG (no shared mutable state between scenarios), and
// per-scenario seeds are derived from the root seed, never from execution
// order or wall-clock time.
//
// Memory stays bounded because each worker runs its scenarios strictly
// sequentially: at most `workers` simulators are alive per fan-out level,
// and a finished scenario's simulator is released before the worker picks
// up the next index.
package harness

import (
	"context"
	"errors"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a worker-count request for n jobs: values <= 0 mean
// runtime.GOMAXPROCS(0), and the count never exceeds n (nor drops below 1).
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// Map runs fn for every index in [0, n) on at most workers goroutines
// (workers <= 0 means GOMAXPROCS) and returns the results in index order.
// Indices are claimed dynamically, so long jobs do not convoy short ones,
// but the assembled output is independent of completion order.
//
// The first failure cancels the context passed to the remaining jobs and
// Map returns an error — preferring the lowest-index job error over
// secondary cancellation errors, so the reported cause is stable. When the
// parent context is cancelled, in-flight jobs are interrupted and Map
// returns the context's error.
func Map[T any](ctx context.Context, workers, n int, fn func(ctx context.Context, index int) (T, error)) ([]T, error) {
	out := make([]T, n)
	if n == 0 {
		return out, ctx.Err()
	}
	w := Workers(workers, n)
	if w == 1 {
		// Sequential fast path: no goroutines, identical assembly order.
		for i := 0; i < n; i++ {
			if err := ctx.Err(); err != nil {
				return out, err
			}
			v, err := fn(ctx, i)
			if err != nil {
				return out, err
			}
			out[i] = v
		}
		return out, nil
	}

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	errs := make([]error, n)
	var next atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				if err := ctx.Err(); err != nil {
					errs[i] = err
					continue
				}
				v, err := fn(ctx, i)
				if err != nil {
					errs[i] = err
					cancel()
					continue
				}
				out[i] = v
			}
		}()
	}
	wg.Wait()

	// Prefer a real job error over the cancellations it induced.
	var first error
	for _, err := range errs {
		if err == nil {
			continue
		}
		if first == nil {
			first = err
		}
		if !errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
			return out, err
		}
	}
	return out, first
}

// DeriveSeed deterministically derives an independent child seed from a
// root seed and a label path (an FNV-1a hash of the labels finalized with a
// splitmix64 round). Distinct label paths yield uncorrelated seed streams,
// and the result is never zero, so it can be fed to components that treat
// zero as "use the default seed".
func DeriveSeed(root uint64, labels ...string) uint64 {
	h := uint64(14695981039346656037) // FNV-1a offset basis
	for _, l := range labels {
		for i := 0; i < len(l); i++ {
			h ^= uint64(l[i])
			h *= 1099511628211
		}
		h ^= 0xff // label separator keeps ("ab","c") != ("a","bc")
		h *= 1099511628211
	}
	z := root + 0x9e3779b97f4a7c15 + h
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	if z == 0 {
		z = 0x9e3779b97f4a7c15
	}
	return z
}
