package cluster

// The cluster-side control plane: a priority admission queue whose drain
// pass dispatches into the pure planners of internal/controlplane.
//
// Admission works on units. A unit is one VM, or — when gang admission is
// enabled — a whole VM group placed all-or-nothing. The queue orders units
// by (priority desc, arrival asc, unit id asc); a drain pass walks that
// order and attempts every unit whose retry timer has expired until it
// meets the first unit it cannot place now. That unit is the blocked head:
// everything behind it waits (no queue jumping), except that with backfill
// enabled a strictly smaller, strictly lower-priority single VM may be
// placed out of order when the shadow-placement check proves the jump
// cannot delay the head's earliest feasible start.
//
// Determinism: every decision here runs inside a cluster-engine event
// after syncHosts, reads only host state and the queue, and breaks every
// tie totally (priority, arrival time, unit id; host index; victim id), so
// reports stay byte-identical at any worker count.

import (
	"fmt"
	"sort"

	"vprobe/internal/controlplane"
	"vprobe/internal/mem"
	"vprobe/internal/sim"
	"vprobe/internal/xen"
)

// admitUnit is one entry of the admission queue: a single VM, or a gang
// admitted all-or-nothing.
type admitUnit struct {
	id       int // creation order; final tiebreak
	vms      []*VM
	gang     bool
	priority controlplane.Priority
	arriveAt sim.Time
	nextTry  sim.Time // earliest next placement attempt
	retries  int      // failed attempts so far
}

// admitResult is the outcome of one placement attempt for a unit.
type admitResult int

const (
	admitPlaced admitResult = iota
	admitFailed
	admitRejected
)

// enqueue appends a unit to the admission queue.
func (c *Cluster) enqueue(u *admitUnit) { c.queue = append(c.queue, u) }

// dequeue removes a unit from the admission queue.
func (c *Cluster) dequeue(u *admitUnit) {
	for i, q := range c.queue {
		if q == u {
			c.queue = append(c.queue[:i], c.queue[i+1:]...)
			return
		}
	}
}

// queueOrder returns the queue in admission order: priority desc, arrival
// asc, unit id asc. The returned slice is the cluster's reusable scratch,
// valid until the next call.
func (c *Cluster) queueOrder() []*admitUnit {
	ordered := append(c.orderScratch[:0], c.queue...)
	c.orderScratch = ordered[:0]
	sort.Slice(ordered, func(i, j int) bool {
		a, b := ordered[i], ordered[j]
		if a.priority != b.priority {
			return a.priority > b.priority
		}
		if a.arriveAt != b.arriveAt {
			return a.arriveAt < b.arriveAt
		}
		return a.id < b.id
	})
	return ordered
}

// drainQueue runs placement passes until one changes nothing. Multiple
// passes matter when a pass preempts: the evicted victims are requeued as
// fresh units and deserve an attempt at the same instant.
func (c *Cluster) drainQueue() {
	for len(c.queue) > 0 && c.err == nil {
		if !c.placePass() {
			return
		}
	}
}

// placePass walks the queue once in admission order and reports whether it
// changed cluster state (placed, rejected, or preempted anything).
func (c *Cluster) placePass() bool {
	now := c.engine.Now()
	changed := false
	var head *admitUnit
	for _, u := range c.queueOrder() {
		if c.err != nil {
			return changed
		}
		if head == nil {
			if u.nextTry > now {
				head = u // in backoff: blocks, but is not attempted
				continue
			}
			switch c.attemptUnit(u) {
			case admitPlaced, admitRejected:
				c.dequeue(u)
				changed = true
			case admitFailed:
				head = u
			}
			continue
		}
		// Behind the blocked head: backfill is the only way forward.
		// Gangs never jump and are never jumped past — a gang head's
		// multi-host reservation is not representable in the single-host
		// shadow check, so the conservative choice is to wait.
		if !c.cfg.Backfill || u.gang || head.gang {
			continue
		}
		if u.priority >= head.priority ||
			u.vms[0].Spec.MemoryMB >= head.vms[0].Spec.MemoryMB {
			continue
		}
		if c.tryBackfill(u, head) {
			c.dequeue(u)
			changed = true
		}
	}
	return changed
}

// attemptUnit tries to place a unit now, handling retry bookkeeping and
// final rejection. Preemption counts as part of the attempt.
func (c *Cluster) attemptUnit(u *admitUnit) admitResult {
	ok := false
	if u.gang {
		ok = c.tryAdmitGang(u)
	} else {
		ok = c.tryAdmitSingle(u)
	}
	if c.err != nil {
		return admitFailed
	}
	if ok {
		return admitPlaced
	}
	u.retries++
	if u.retries > c.cfg.MaxRetries {
		for _, vm := range u.vms {
			vm.state = stateRejected
			c.stats.Rejected++
			c.pstats[vm.Spec.Priority].Rejected++
			c.spans.reject(vm, u.retries)
			c.emit(EventVMReject, nil, vm, "vm %s rejected after %d attempts",
				vm.Spec.Name, u.retries)
		}
		return admitRejected
	}
	c.stats.Retries++
	backoff := c.cfg.RetryBackoff * sim.Duration(u.retries)
	u.nextTry = c.engine.Now().Add(backoff)
	what := "vm " + u.vms[0].Spec.Name
	if u.gang {
		what = fmt.Sprintf("gang %s (%d VMs)", u.vms[0].Spec.Group, len(u.vms))
	}
	c.spans.retry(u, backoff)
	c.emit(EventVMRetry, nil, u.vms[0], "%s queued (attempt %d, retry in %v)",
		what, u.retries, backoff)
	c.engine.Schedule(backoff, "retry", func(*sim.Engine) {
		if !c.sync() {
			return
		}
		c.drainQueue()
	})
	return admitFailed
}

// tryAdmitSingle places one VM through the pipeline, falling back to
// preemption for above-best-effort classes when enabled.
func (c *Cluster) tryAdmitSingle(u *admitUnit) bool {
	vm := u.vms[0]
	hv, plan, err := c.place(&vm.Spec)
	if c.spans != nil {
		// Record the decision's provenance before acting on it: placeOn
		// mutates the host, and the breakdown must reflect the views the
		// decision actually read.
		c.spans.placeDecision(vm, c.liveViews(), hv, err, u.retries+1)
	}
	if err == nil {
		c.placeOn(vm, c.hosts[hv.Index], plan, u.retries+1)
		return c.err == nil
	}
	if c.cfg.Preempt && u.priority > controlplane.BestEffort {
		return c.tryPreemptFor(u, vm)
	}
	return false
}

// tryPreemptFor searches for a minimal set of strictly-lower-priority
// victims whose eviction admits the VM, executes the cheapest plan
// (victims are live-migrated when any other host fits them, else killed
// and requeued), and places the VM on the freed host.
func (c *Cluster) tryPreemptFor(u *admitUnit, vm *VM) bool {
	req := controlplane.Request{
		ID: vm.ID, MemoryMB: vm.Spec.MemoryMB,
		VCPUs: vm.Spec.VCPUs, Priority: u.priority,
	}
	caps := c.hostCaps(func(v *VM) bool { return v.Spec.Priority < u.priority })
	plan := controlplane.PlanPreemption(req, caps, c.cpFit)
	if plan == nil {
		return false
	}
	target := c.hosts[plan.HostIndex]
	for _, id := range plan.VictimIDs {
		victim := c.vms[id]
		if victim.state != stateRunning || victim.Host != target {
			return false // plan went stale before any eviction of it ran
		}
		c.evictVictim(victim, vm)
		if c.err != nil {
			return false
		}
	}
	// The evictions freed real capacity; re-run the pipeline restricted to
	// the planned host so the memory plan reflects the post-eviction
	// layout. The planner's deduction is an estimate — if it diverged the
	// arrival simply stays queued (the victims are already safe: migrated
	// or requeued).
	hv, mplan, err := c.pipeline.Place(&vm.Spec, c.liveView(target))
	if c.spans != nil {
		// The post-eviction re-place is restricted to the planned host;
		// its provenance explains that single candidate.
		c.spans.placeDecision(vm, c.liveView(target), hv, err, u.retries+1)
	}
	if err != nil {
		return false
	}
	c.placeOn(vm, c.hosts[hv.Index], mplan, u.retries+1)
	return c.err == nil
}

// evictVictim removes one preemption victim from its host: live-migrated
// to any other host that fits it, else killed and returned to the
// admission queue with its remaining lifetime.
func (c *Cluster) evictVictim(victim, beneficiary *VM) {
	src := victim.Host
	// Earlier evictions in the same preemption plan dirtied hosts;
	// refresh before reading so this victim sees their effect, exactly
	// as the per-eviction fresh snapshots used to.
	c.refreshViews()
	alt := c.altScratch[:0]
	for _, ho := range c.hosts {
		if ho != src {
			alt = append(alt, &ho.view)
		}
	}
	c.altScratch = alt[:0]
	c.stats.Preemptions++
	if hv, plan, err := c.pipeline.Place(&victim.Spec, alt); err == nil {
		target := c.hosts[hv.Index]
		if c.spans != nil {
			// Price the eviction with the same page-copy blackout the
			// migration itself will pay.
			cycles := c.migrator.FullCopyCycles(victim.Spec.MemoryMB)
			c.spans.preempt(victim, beneficiary, "live-migrating to "+hv.Name,
				sim.Duration(cycles/target.Top.CyclesPerMicrosecond()))
		}
		c.emit(EventVMPreempted, src, victim,
			"vm %s preempted off %s for %s, migrating to %s",
			victim.Spec.Name, src.Name, beneficiary.Spec.Name, hv.Name)
		c.startMigration(victim, target, plan)
		return
	}
	c.stats.PreemptKills++
	c.spans.preempt(victim, beneficiary, "killed and requeued", 0)
	c.emit(EventVMPreempted, src, victim,
		"vm %s preempted off %s for %s, killed and requeued",
		victim.Spec.Name, src.Name, beneficiary.Spec.Name)
	if err := src.H.DestroyDomain(victim.dom); err != nil {
		c.err = fmt.Errorf("cluster: preempt %s: %w", victim.Spec.Name, err)
		c.engine.Stop()
		return
	}
	src.removeVM(victim)
	c.markDirty(src)
	c.requeueVictim(victim)
}

// requeueVictim returns a killed preemption victim to the admission queue
// as a fresh unit carrying its remaining lifetime and original arrival
// time (it keeps its queue seniority within its class).
func (c *Cluster) requeueVictim(vm *VM) {
	now := c.engine.Now()
	if vm.departAt > now {
		vm.life = vm.departAt.Sub(now)
	} else {
		vm.life = sim.Second
	}
	vm.departAt = 0
	vm.departSeq++
	vm.dom = nil
	vm.Host = nil
	vm.state = statePending
	u := &admitUnit{
		id:       c.unitSeq,
		vms:      []*VM{vm},
		priority: vm.Spec.Priority,
		arriveAt: vm.arriveAt,
		nextTry:  now,
	}
	c.unitSeq++
	c.enqueue(u)
}

// tryAdmitGang places a whole gang all-or-nothing in two phases. Reserve:
// every member is routed by the pipeline against what-if views that
// accumulate the earlier members' deductions. Commit: all domains are
// built first, and only then does any member's placement finalize — an
// AddDomain failure mid-commit (the reserve arithmetic is an estimate of
// the allocator's) tears the built domains down again and the gang
// retries as a whole.
func (c *Cluster) tryAdmitGang(u *admitUnit) bool {
	views := c.liveViews()
	what := make([]*HostView, len(views))
	for i, hv := range views {
		cp := *hv
		cp.FreePerNodeMB = append([]int64(nil), hv.FreePerNodeMB...)
		// The copy diverges from the live host as members reserve into
		// it; the live FreeIndex must not shadow the hypothetical vector.
		cp.FreeIdx = nil
		what[i] = &cp
	}
	type slot struct {
		host *Host
		plan MemPlan
	}
	slots := make([]slot, len(u.vms))
	for i, vm := range u.vms {
		hv, plan, err := c.pipeline.Place(&vm.Spec, what)
		if err != nil {
			return false
		}
		takes := planTakes(plan, hv.FreePerNodeMB, vm.Spec.MemoryMB)
		for n, take := range takes {
			hv.FreePerNodeMB[n] -= take
			hv.FreeMB -= take
		}
		hv.GuestVCPUs += vm.Spec.VCPUs
		hv.VMs++
		slots[i] = slot{c.hosts[hv.Index], plan}
	}
	doms := make([]*xen.Domain, len(u.vms))
	for i, vm := range u.vms {
		dom, err := c.admitDomain(vm, slots[i].host, slots[i].plan)
		if err != nil {
			if c.err == nil {
				// Roll back the domains already built. Each teardown
				// dirties its host, so the generations of every touched
				// host bump and their cached scores recompute — the host
				// where AddDomain itself failed mutated nothing and stays
				// clean.
				for j := 0; j < i; j++ {
					if derr := slots[j].host.H.DestroyDomain(doms[j]); derr != nil {
						c.err = fmt.Errorf("cluster: gang rollback on %s: %w",
							slots[j].host.Name, derr)
						c.engine.Stop()
						break
					}
					c.markDirty(slots[j].host)
				}
			}
			return false
		}
		doms[i] = dom
	}
	for i, vm := range u.vms {
		c.finalizePlacement(vm, slots[i].host, doms[i], slots[i].plan, u.retries+1)
	}
	c.stats.GangsAdmitted++
	c.spans.gangAdmitted(u)
	c.emit(EventGangAdmitted, nil, u.vms[0], "gang %s admitted: %d VMs placed all-or-nothing",
		u.vms[0].Spec.Group, len(u.vms))
	return true
}

// tryBackfill places a small low-priority VM ahead of the blocked head if
// the pipeline finds it a host and the shadow-placement check proves the
// jump cannot delay the head's earliest feasible start.
func (c *Cluster) tryBackfill(u, head *admitUnit) bool {
	vm := u.vms[0]
	hv, plan, err := c.place(&vm.Spec)
	if err != nil {
		return false
	}
	headVM := head.vms[0]
	req := controlplane.Request{
		ID: headVM.ID, MemoryMB: headVM.Spec.MemoryMB,
		VCPUs: headVM.Spec.VCPUs, Priority: head.priority,
	}
	caps := c.hostCaps(nil)
	deps := c.departures()
	res := controlplane.ShadowReservation(req, caps, deps, c.cpFit, nil)
	cand := controlplane.Placement{
		HostIndex:    hv.Index,
		TakesPerNode: planTakes(plan, hv.FreePerNodeMB, vm.Spec.MemoryMB),
		VCPUs:        vm.Spec.VCPUs,
	}
	if !controlplane.CanBackfill(req, res, caps, deps, c.cpFit, cand) {
		return false
	}
	if c.spans != nil {
		// The decision's views are unchanged since c.place: the shadow
		// reservation works on copied caps, never the hosts.
		c.spans.placeDecision(vm, c.liveViews(), hv, nil, u.retries+1)
		c.spans.backfill(vm, c.hosts[hv.Index], headVM)
	}
	c.placeOn(vm, c.hosts[hv.Index], plan, u.retries+1)
	if c.err != nil {
		return false
	}
	c.stats.Backfills++
	c.emit(EventBackfill, c.hosts[hv.Index], vm,
		"vm %s backfilled onto %s ahead of blocked %s",
		vm.Spec.Name, hv.Name, headVM.Spec.Name)
	return true
}

// deschedule is the periodic defragmentation pass: during low load (empty
// admission queue, cluster VCPU commitment under the configured limit) it
// drains the emptiest host whose entire population can move elsewhere,
// one host per tick, reusing the rebalancer's migration cooldown so a VM
// is never ping-ponged.
func (c *Cluster) deschedule() {
	if !c.sync() {
		return
	}
	if len(c.queue) > 0 {
		return
	}
	var guest, cap int
	for _, hv := range c.liveViews() {
		guest += hv.GuestVCPUs
		cap += hv.VCPUCap
	}
	if cap == 0 || float64(guest)/float64(cap) > c.cfg.DescheduleUtilLimit {
		return
	}
	now := c.engine.Now()
	caps := c.hostCaps(func(v *VM) bool {
		return now.Sub(v.placedAt) >= c.cfg.MigrationCooldown
	})
	plan := controlplane.PlanDrain(caps, c.cpFit)
	if plan == nil {
		return
	}
	src := c.hosts[plan.HostIndex]
	for _, mv := range plan.Moves {
		vm := c.vms[mv.VictimID]
		if vm.state != stateRunning || vm.Host != src {
			continue
		}
		hv, mplan, err := c.pipeline.Place(&vm.Spec, c.liveView(c.hosts[mv.TargetHost]))
		if err != nil {
			continue // capacity moved since the plan; skip this move
		}
		c.stats.DeschedMoves++
		c.spans.deschedMove(vm, src, c.hosts[hv.Index])
		c.emit(EventDeschedule, src, vm, "vm %s drained off %s to %s (defrag)",
			vm.Spec.Name, src.Name, c.hosts[hv.Index].Name)
		c.startMigration(vm, c.hosts[hv.Index], mplan)
		if c.err != nil {
			return
		}
	}
}

// ---- planner adapters ----

// hostCaps snapshots every host as a control-plane capacity record,
// reading the cached views (refreshed first) instead of rescanning the
// allocators. The per-cap slices are fresh copies: the planners treat
// caps as their own what-if state to deduct from. victimFilter, when
// non-nil, selects which running VMs are offered to the planner as
// evictable; migrating VMs are never offered.
func (c *Cluster) hostCaps(victimFilter func(*VM) bool) []*controlplane.HostCap {
	c.refreshViews()
	caps := make([]*controlplane.HostCap, len(c.hosts))
	for i, ho := range c.hosts {
		hc := &controlplane.HostCap{
			Index:         i,
			GuestVCPUs:    ho.view.GuestVCPUs,
			VCPUCap:       ho.view.VCPUCap,
			LiveVMs:       ho.view.VMs,
			FreePerNodeMB: append([]int64(nil), ho.view.FreePerNodeMB...),
		}
		if victimFilter != nil {
			for _, vm := range ho.VMs {
				if vm.state != stateRunning || !victimFilter(vm) {
					continue
				}
				hc.Victims = append(hc.Victims, controlplane.Victim{
					ID: vm.ID, MemoryMB: vm.Spec.MemoryMB, VCPUs: vm.Spec.VCPUs,
					Priority:       vm.Spec.Priority,
					FreesPerNodeMB: domFrees(vm),
					CostCycles:     c.migrator.FullCopyCycles(vm.Spec.MemoryMB),
				})
			}
		}
		caps[i] = hc
	}
	return caps
}

// cpFit adapts the pipeline's filter phase to the control-plane planners:
// a what-if host capacity passes when every filter of the active policy
// admits a synthetic spec with the request's resources.
func (c *Cluster) cpFit(req controlplane.Request, hc *controlplane.HostCap) bool {
	ho := c.hosts[hc.Index]
	spec := VMSpec{
		Name:     fmt.Sprintf("vm%03d", req.ID),
		MemoryMB: req.MemoryMB,
		VCPUs:    req.VCPUs,
	}
	hv := &HostView{
		Index:         hc.Index,
		Name:          ho.Name,
		Nodes:         ho.Top.NumNodes(),
		CPUs:          ho.Top.NumCPUs(),
		FreePerNodeMB: hc.FreePerNodeMB,
		FreeMB:        hc.FreeMB(),
		TotalMB:       ho.Top.TotalMemoryMB(),
		GuestVCPUs:    hc.GuestVCPUs,
		VCPUCap:       hc.VCPUCap,
		VMs:           hc.LiveVMs,
	}
	for _, f := range c.pipeline.Filters {
		if f.Filter(&spec, hv) != nil {
			return false
		}
	}
	return true
}

// departures lists every resident VM's known future departure — lifetimes
// are drawn at arrival, so the schedule is exact, not a forecast.
func (c *Cluster) departures() []controlplane.Departure {
	now := c.engine.Now()
	var deps []controlplane.Departure
	for _, ho := range c.hosts {
		for _, vm := range ho.VMs {
			if vm.departAt <= now || vm.dom == nil || vm.dom.Destroyed {
				continue
			}
			deps = append(deps, controlplane.Departure{
				At: vm.departAt, HostIndex: ho.Index, ID: vm.ID,
				FreesPerNodeMB: domFrees(vm), VCPUs: vm.Spec.VCPUs,
			})
		}
	}
	return deps
}

// domFrees is the per-node memory a domain's teardown hands back,
// mirroring mem.Allocator.Release's rounding.
func domFrees(vm *VM) []int64 {
	frees := make([]int64, len(vm.dom.MemDist))
	for i, f := range vm.dom.MemDist {
		frees[i] = int64(f*float64(vm.dom.MemoryMB) + 0.5)
	}
	return frees
}

// planTakes computes the per-node deduction a memory plan implies, using
// the control-plane mirrors of the allocator's three policies.
func planTakes(plan MemPlan, freePerNode []int64, memMB int64) []int64 {
	free := append([]int64(nil), freePerNode...)
	var takes []int64
	switch plan.Policy {
	case mem.PolicyFill:
		takes, _ = controlplane.TakeFill(free, memMB)
	case mem.PolicyLocal:
		takes, _ = controlplane.TakeLocal(free, memMB, int(plan.Preferred))
	default:
		takes, _ = controlplane.TakeStripe(free, memMB)
	}
	return takes
}
