# Local workflow mirror of .github/workflows/ci.yml: the same four gates,
# in the same order, so a green `make` is a green CI run.
#
# The vprobe-vet linter is built from this module (internal/analysis) on a
# dependency-free go/analysis-style framework; no tools need installing.
# See DESIGN.md §8 "Determinism contract" for the rules it enforces.

GO ?= go

.PHONY: all build vet lint test race smoke smoke-serve bench bench-check escape-baseline

all: build lint test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint = go vet + the determinism contract (mapiter, walltime, ctxflow,
# eventswitch, errsentinel), the deprecation fence (deprecated), the
# module-wide contract analyzers (hotpath, specfield, telemetryhandle),
# and the compiler's escape-analysis baseline (vprobe-escape -diff).
# `go run ./cmd/vprobe-vet -list` shows the analyzers.
lint: vet
	$(GO) run ./cmd/vprobe-vet ./...
	$(GO) run ./cmd/vprobe-escape -diff

# escape-baseline rewrites ESCAPES_hotpath.json from the current compiler
# output. Run it after deliberately changing hot-path allocation behaviour
# and commit the refreshed manifest with the change that caused it.
escape-baseline:
	$(GO) run ./cmd/vprobe-escape -update

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# smoke mirrors CI: a short cluster run, then telemetry exports from both
# entry points validated by vprobe-metrics check.
smoke:
	$(GO) run ./cmd/vprobe-cluster -hosts 2 -horizon 30s -seed 1
	$(GO) run ./cmd/vprobe-sim -metrics /tmp/vprobe-sim.prom
	$(GO) run ./cmd/vprobe-metrics check /tmp/vprobe-sim.prom
	$(GO) run ./cmd/vprobe-cluster -hosts 2 -horizon 30s -seed 1 -metrics /tmp/vprobe-cluster.prom
	$(GO) run ./cmd/vprobe-metrics check /tmp/vprobe-cluster.prom

# smoke-serve boots the vprobe-serve daemon and checks its contracts from
# the outside: a re-POSTed spec answers from the cache byte-identically,
# and both run and server metrics parse as Prometheus exposition.
smoke-serve:
	sh scripts/serve-smoke.sh

# bench runs the hot-path micro-benchmarks and appends a snapshot (ns/op,
# B/op, allocs/op per benchmark) to BENCH_hotpath.json. Override LABEL to
# name the snapshot after the change being measured. -count=3 repetitions
# collapse to min ns/op / max allocs/op in vprobe-bench, so one noisy
# scheduling window doesn't pollute the committed baseline.
LABEL ?= local
bench:
	$(GO) test -run '^$$' -bench 'QuantumHotPath|SimulationSecond|PerfExecute|PickSteal|^BenchmarkPartition$$|SpecCompile|ClusterArrival' -benchtime 2s -count 3 . ./internal/cluster \
		| $(GO) run ./cmd/vprobe-bench -label '$(LABEL)'

# bench-check runs the same benchmark set briefly and compares it against
# the last committed BENCH_hotpath.json entry instead of appending: >25%
# ns/op regression or any allocs/op on a zero-alloc baseline fails. Short
# -benchtime with -count=3 (best-of-three per benchmark) keeps scheduler
# noise inside the tolerance on shared hardware. The anchored
# ClusterArrival$ deliberately skips the FullRescan comparator: it exists
# as the incremental engine's speedup denominator in the history, and
# gating the deliberately-slow path would only add noise-driven failures.
bench-check:
	$(GO) test -run '^$$' -bench 'QuantumHotPath|SimulationSecond|PerfExecute|PickSteal|^BenchmarkPartition$$|SpecCompile|ClusterArrival$$' -benchtime 1s -count 3 . ./internal/cluster \
		| $(GO) run ./cmd/vprobe-bench -check
