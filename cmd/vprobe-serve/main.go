// Command vprobe-serve runs the simulation-as-a-service daemon: a JSON
// HTTP API over the versioned spec layer (internal/spec). Clients POST
// serializable ScenarioV1 / ClusterV1 documents and get back reports,
// JSONL event streams, and telemetry exports; completed runs are cached
// by the spec's canonical hash, so identical requests are answered
// byte-for-byte without re-simulating.
//
// Usage:
//
//	vprobe-serve [-addr host:port] [-concurrency n] [-run-timeout d]
//	             [-max-body bytes]
//
// Quickstart:
//
//	vprobe-serve -addr :8080 &
//	curl -s localhost:8080/v1/simulations -d '{"vms":[
//	  {"name":"vm0","memory_mb":2048,"vcpus":2,"apps":[{"name":"soplex"}]}]}'
//
// SIGINT or SIGTERM stops the listener and aborts in-flight runs.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"vprobe/internal/serve"
)

func main() {
	addr := flag.String("addr", "127.0.0.1:8080", "listen address")
	concurrency := flag.Int("concurrency", 0, "max simultaneous runs (0 = GOMAXPROCS)")
	runTimeout := flag.Duration("run-timeout", 2*time.Minute, "wall-clock cap per run")
	maxBody := flag.Int64("max-body", 1<<20, "request body cap in bytes")
	flag.Parse()
	if flag.NArg() > 0 {
		fmt.Fprintf(os.Stderr, "unexpected arguments: %v\n", flag.Args())
		flag.Usage()
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	api := serve.New(serve.Options{
		MaxConcurrent: *concurrency,
		RunTimeout:    *runTimeout,
		MaxBodyBytes:  *maxBody,
		BaseContext:   ctx,
	})
	srv := &http.Server{Addr: *addr, Handler: api.Handler()}
	go func() {
		<-ctx.Done()
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		srv.Shutdown(shutdownCtx)
	}()

	fmt.Fprintf(os.Stderr, "vprobe-serve listening on %s\n", *addr)
	if err := srv.ListenAndServe(); err != nil && !errors.Is(err, http.ErrServerClosed) {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
