// Command vprobe-trace runs a small scenario with scheduling trace output,
// showing quantum dispatches, blocks/wakes, migrations, guest thread
// parking, and app completions.
//
// Usage:
//
//	vprobe-trace [-sched vprobe] [-seconds 3] [-apps soplex,libquantum] [-json]
//
// With -json each event is emitted as one JSON object per line on stdout
// (machine-readable stream); the report moves to stderr so stdout stays
// pure JSONL.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	"vprobe"
)

// jsonEvent is the -json wire form of one vprobe.Event: virtual time in
// seconds plus the typed identity fields. Empty identities are omitted.
type jsonEvent struct {
	T      float64 `json:"t"`
	Kind   string  `json:"kind"`
	VCPU   int     `json:"vcpu"`
	Node   int     `json:"node"`
	App    string  `json:"app,omitempty"`
	Host   string  `json:"host,omitempty"`
	VM     string  `json:"vm,omitempty"`
	Detail string  `json:"detail"`
}

// jsonSink streams events as JSON Lines.
func jsonSink(w io.Writer) vprobe.EventSink {
	enc := json.NewEncoder(w)
	return vprobe.EventFunc(func(ev vprobe.Event) {
		enc.Encode(jsonEvent{
			T:      ev.At.Seconds(),
			Kind:   string(ev.Kind),
			VCPU:   ev.VCPU,
			Node:   ev.Node,
			App:    ev.App,
			Host:   ev.Host,
			VM:     ev.VM,
			Detail: ev.Detail,
		})
	})
}

func main() {
	schedName := flag.String("sched", "vprobe", "scheduler: credit|vprobe|vcpu-p|lb|brm")
	seconds := flag.Float64("seconds", 2, "virtual seconds to trace")
	apps := flag.String("apps", "soplex,libquantum", "comma-separated catalog apps for the traced VM")
	seed := flag.Uint64("seed", 1, "simulation seed")
	asJSON := flag.Bool("json", false, "emit one JSON object per event (report goes to stderr)")
	flag.Parse()

	out := bufio.NewWriter(os.Stdout)
	defer out.Flush()
	var sink vprobe.EventSink
	if *asJSON {
		sink = jsonSink(out)
	} else {
		sink = vprobe.EventFunc(func(ev vprobe.Event) {
			fmt.Fprintf(out, "%12.6f  %-14s %s\n", ev.At.Seconds(), ev.Kind, ev.Detail)
		})
	}
	sim, err := vprobe.NewSimulator(vprobe.Config{
		Scheduler: vprobe.Scheduler(*schedName),
		Seed:      *seed,
		Events:    sink,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	vm, err := sim.AddVM(vprobe.VMConfig{
		Name: "traced", MemoryMB: 8 * 1024, VCPUs: 8,
		Memory: vprobe.MemStripe, FillGuestIdle: true,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for _, app := range strings.Split(*apps, ",") {
		if err := vm.RunApp(strings.TrimSpace(app)); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	burner, err := sim.AddVM(vprobe.VMConfig{Name: "burner", MemoryMB: 1024, VCPUs: 8})
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	for i := 0; i < 8; i++ {
		if err := burner.RunApp("hungry"); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	report, err := sim.Run(time.Duration(*seconds * float64(time.Second)))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *asJSON {
		out.Flush()
		fmt.Fprint(os.Stderr, report)
		return
	}
	fmt.Fprintln(out)
	fmt.Fprint(out, report)
}
