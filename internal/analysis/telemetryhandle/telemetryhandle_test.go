package telemetryhandle_test

import (
	"testing"

	"vprobe/internal/analysis/framework/analysistest"
	"vprobe/internal/analysis/telemetryhandle"
)

func TestTelemetryHandle(t *testing.T) {
	analysistest.RunModule(t, analysistest.TestData(), telemetryhandle.Analyzer,
		"handles", "telemetry")
}
