package cluster

import (
	"fmt"
	"testing"

	"vprobe/internal/sim"
)

// The per-arrival placement benchmarks behind the incremental engine's
// acceptance criterion: at 1024 hosts the cached path must beat the
// pre-refactor full rescan by at least 10x. Both benchmarks measure the
// same steady state — a loaded fleet where each arrival dirties exactly
// the host it lands on — so the comparison isolates the decision cost,
// not admission bookkeeping.

// benchFleet builds an N-host cluster with every third host loaded, the
// shape a live fleet settles into: most hosts clean, a few dirty per
// decision.
func benchFleet(b *testing.B, hosts int) *Cluster {
	b.Helper()
	c, err := New(Config{Hosts: hosts, Seed: 7})
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < hosts; i += 3 {
		spec := VMSpec{Name: fmt.Sprintf("seed%d", i), MemoryMB: 2048, VCPUs: 2}
		hv, plan, err := c.place(&spec)
		if err != nil {
			b.Fatal(err)
		}
		vm := &VM{ID: len(c.vms), Spec: spec, life: 300 * sim.Second}
		c.vms = append(c.vms, vm)
		c.placeOn(vm, c.hosts[hv.Index], plan, 1)
		if c.err != nil {
			b.Fatal(c.err)
		}
	}
	c.refreshViews()
	return c
}

// benchSpecs rotates the generated mix's three VM shapes, so the score
// cache serves all of its classes like a real run does.
var benchSpecs = []VMSpec{
	{MemoryMB: 1024, VCPUs: 1},
	{MemoryMB: 2048, VCPUs: 2},
	{MemoryMB: 4096, VCPUs: 4},
}

// BenchmarkClusterArrival measures one incremental placement decision:
// refresh the (single) dirty view, rescore it, repair the class heap,
// read the winner. Marking the winner dirty afterwards mirrors the
// delta a real admission applies, keeping every iteration in steady
// state without consuming capacity.
func BenchmarkClusterArrival(b *testing.B) {
	for _, hosts := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			c := benchFleet(b, hosts)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spec := benchSpecs[i%len(benchSpecs)]
				hv, _, err := c.place(&spec)
				if err != nil {
					b.Fatal(err)
				}
				c.markDirty(c.hosts[hv.Index])
			}
		})
	}
}

// BenchmarkClusterArrivalFullRescan is the pre-refactor decision: build
// a fresh view of every host and run the generic pipeline over all of
// them. It exists as the speedup denominator for BenchmarkClusterArrival
// and as a record of what O(hosts)-per-arrival costs.
func BenchmarkClusterArrivalFullRescan(b *testing.B) {
	for _, hosts := range []int{64, 256, 1024} {
		b.Run(fmt.Sprintf("hosts=%d", hosts), func(b *testing.B) {
			c := benchFleet(b, hosts)
			views := make([]*HostView, len(c.hosts))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				spec := benchSpecs[i%len(benchSpecs)]
				for j, ho := range c.hosts {
					views[j] = ho.freshView(c.cfg.Overcommit)
				}
				if _, _, err := c.pipeline.Place(&spec, views); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
