// Span exports: JSONL (one span object per line, the explain CLI's input
// format) and Chrome trace-event JSON (loadable in Perfetto or
// chrome://tracing), plus ValidateChromeTrace — the span twin of
// ValidateExposition — and ReadSpans to load a JSONL span file back.
package telemetry

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"strconv"

	"vprobe/internal/sim"
)

// spanWire is the JSONL wire form of a Span. IDs travel as hex strings:
// uint64 does not round-trip through JSON numbers (IEEE doubles), and hex
// keeps grep-able IDs short. Times are virtual seconds, costs virtual
// microseconds (exact: sim.Duration is integral microseconds).
type spanWire struct {
	ID     string   `json:"id"`
	Parent string   `json:"parent,omitempty"`
	Kind   SpanKind `json:"kind"`
	Name   string   `json:"name"`
	Host   string   `json:"host,omitempty"`
	VM     string   `json:"vm,omitempty"`
	Start  float64  `json:"start"`
	End    float64  `json:"end"`
	Score  *float64 `json:"score,omitempty"`
	CostUS *int64   `json:"cost_us,omitempty"`
	Detail string   `json:"detail,omitempty"`
}

func spanToWire(s *Span) spanWire {
	w := spanWire{
		ID: strconv.FormatUint(s.ID, 16), Kind: s.Kind, Name: s.Name,
		Host: s.Host, VM: s.VM,
		Start: s.Start.Seconds(), End: s.End.Seconds(), Detail: s.Detail,
	}
	if s.Parent != 0 {
		w.Parent = strconv.FormatUint(s.Parent, 16)
	}
	if s.hasScore {
		sc := s.Score
		w.Score = &sc
	}
	if s.hasCost {
		us := s.Cost.Micros()
		w.CostUS = &us
	}
	return w
}

// WriteSpansJSONL exports the recorded spans as JSON Lines in record
// order. An empty tracer writes an empty (zero-line) stream, which is a
// valid JSONL document.
func (t *Tracer) WriteSpansJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	for i := 0; i < t.Len(); i++ {
		line, err := json.Marshal(spanToWire(t.span(SpanRef(i))))
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if err := bw.WriteByte('\n'); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// ReadSpans parses a JSONL span stream written by WriteSpansJSONL. An
// empty stream yields an empty slice.
func ReadSpans(r io.Reader) ([]Span, error) {
	var out []Span
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	line := 0
	for sc.Scan() {
		line++
		raw := bytes.TrimSpace(sc.Bytes())
		if len(raw) == 0 {
			continue
		}
		var w spanWire
		if err := json.Unmarshal(raw, &w); err != nil {
			return nil, fmt.Errorf("telemetry: span line %d: %w", line, err)
		}
		id, err := strconv.ParseUint(w.ID, 16, 64)
		if err != nil {
			return nil, fmt.Errorf("telemetry: span line %d: bad id %q", line, w.ID)
		}
		var parent uint64
		if w.Parent != "" {
			if parent, err = strconv.ParseUint(w.Parent, 16, 64); err != nil {
				return nil, fmt.Errorf("telemetry: span line %d: bad parent %q", line, w.Parent)
			}
		}
		s := Span{
			ID: id, Parent: parent, Kind: w.Kind, Name: w.Name,
			Host: w.Host, VM: w.VM,
			Start:  sim.Time(math.Round(w.Start * float64(sim.Second))),
			End:    sim.Time(math.Round(w.End * float64(sim.Second))),
			Detail: w.Detail,
		}
		if w.Score != nil {
			s.Score, s.hasScore = *w.Score, true
		}
		if w.CostUS != nil {
			s.Cost, s.hasCost = sim.Duration(*w.CostUS), true
		}
		out = append(out, s)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return out, nil
}

// HasScore reports whether the span carries a score decoration (set by
// SetScore, preserved through the JSONL round trip).
func (s *Span) HasScore() bool { return s.hasScore }

// HasCost reports whether the span carries a cost decoration.
func (s *Span) HasCost() bool { return s.hasCost }

// chromeEvent is one Chrome trace-event object. Durations and timestamps
// are in microseconds — exactly sim.Time's unit, so the export is lossless.
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	TS   int64          `json:"ts"`
	Dur  *int64         `json:"dur,omitempty"`
	PID  int            `json:"pid"`
	TID  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// WriteChromeTrace exports the spans as a Chrome trace-event JSON array
// (complete "X" events on pid 0), loadable in Perfetto or chrome://tracing.
// Each distinct host maps to one thread in first-seen order (tid 1, 2, …)
// with a thread_name metadata record; host-less spans (run, cluster-level
// control decisions) land on tid 0 "main".
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	spans := t.Spans()
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString("[\n"); err != nil {
		return err
	}
	enc := func(v any, last bool) error {
		line, err := json.Marshal(v)
		if err != nil {
			return err
		}
		if _, err := bw.Write(line); err != nil {
			return err
		}
		if !last {
			if err := bw.WriteByte(','); err != nil {
				return err
			}
		}
		return bw.WriteByte('\n')
	}

	hosts := hostOrder(spans)
	tids := map[string]int{"": 0}
	for i, h := range hosts {
		tids[h] = i + 1
	}
	total := 1 + len(hosts) + 1 + len(spans) // process_name + thread_names + cluster thread + spans
	n := 0
	emit := func(v any) error {
		n++
		return enc(v, n == total)
	}
	if err := emit(chromeEvent{Name: "process_name", Ph: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "vprobe"}}); err != nil {
		return err
	}
	if err := emit(chromeEvent{Name: "thread_name", Ph: "M", PID: 0, TID: 0,
		Args: map[string]any{"name": "main"}}); err != nil {
		return err
	}
	for _, h := range hosts {
		if err := emit(chromeEvent{Name: "thread_name", Ph: "M", PID: 0, TID: tids[h],
			Args: map[string]any{"name": h}}); err != nil {
			return err
		}
	}
	for i := range spans {
		s := &spans[i]
		dur := int64(s.End - s.Start)
		if dur < 0 {
			dur = 0
		}
		args := map[string]any{"kind": string(s.Kind)}
		if s.VM != "" {
			args["vm"] = s.VM
		}
		if s.Detail != "" {
			args["detail"] = s.Detail
		}
		if s.hasScore {
			args["score"] = s.Score
		}
		if s.hasCost {
			args["cost_us"] = s.Cost.Micros()
		}
		args["id"] = strconv.FormatUint(s.ID, 16)
		if s.Parent != 0 {
			args["parent"] = strconv.FormatUint(s.Parent, 16)
		}
		if err := emit(chromeEvent{Name: s.Name, Ph: "X", TS: int64(s.Start),
			Dur: &dur, PID: 0, TID: tids[s.Host], Args: args}); err != nil {
			return err
		}
	}
	if _, err := bw.WriteString("]\n"); err != nil {
		return err
	}
	return bw.Flush()
}

// ValidateChromeTrace checks that data parses as a Chrome trace-event JSON
// array every trace viewer accepts: a top-level array whose elements each
// carry name/ph/pid/tid, with "X" events also carrying a non-negative ts
// and dur. It returns the number of events (metadata included). It is the
// span-export twin of ValidateExposition — a deliberately independent
// checker, so an export bug cannot hide behind a shared implementation.
func ValidateChromeTrace(data []byte) (events int, err error) {
	var raw []map[string]json.RawMessage
	if err := json.Unmarshal(data, &raw); err != nil {
		return 0, fmt.Errorf("telemetry: chrome trace: not a JSON array: %w", err)
	}
	for i, ev := range raw {
		var ph, name string
		if err := requireString(ev, "ph", &ph); err != nil {
			return 0, fmt.Errorf("telemetry: chrome trace event %d: %w", i, err)
		}
		if err := requireString(ev, "name", &name); err != nil {
			return 0, fmt.Errorf("telemetry: chrome trace event %d: %w", i, err)
		}
		for _, key := range []string{"pid", "tid"} {
			var n float64
			if err := requireNumber(ev, key, &n); err != nil {
				return 0, fmt.Errorf("telemetry: chrome trace event %d (%s): %w", i, name, err)
			}
		}
		switch ph {
		case "M": // metadata: no timestamp required
		case "X":
			var ts, dur float64
			if err := requireNumber(ev, "ts", &ts); err != nil {
				return 0, fmt.Errorf("telemetry: chrome trace event %d (%s): %w", i, name, err)
			}
			if err := requireNumber(ev, "dur", &dur); err != nil {
				return 0, fmt.Errorf("telemetry: chrome trace event %d (%s): %w", i, name, err)
			}
			if ts < 0 || dur < 0 {
				return 0, fmt.Errorf("telemetry: chrome trace event %d (%s): negative ts/dur", i, name)
			}
		default:
			return 0, fmt.Errorf("telemetry: chrome trace event %d (%s): unsupported phase %q", i, name, ph)
		}
	}
	if len(raw) == 0 {
		return 0, fmt.Errorf("telemetry: chrome trace: no events")
	}
	return len(raw), nil
}

func requireString(ev map[string]json.RawMessage, key string, out *string) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("%q is not a string", key)
	}
	return nil
}

func requireNumber(ev map[string]json.RawMessage, key string, out *float64) error {
	raw, ok := ev[key]
	if !ok {
		return fmt.Errorf("missing %q", key)
	}
	if err := json.Unmarshal(raw, out); err != nil {
		return fmt.Errorf("%q is not a number", key)
	}
	return nil
}
