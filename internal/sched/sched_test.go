package sched_test

import (
	"testing"

	"vprobe/internal/core"
	"vprobe/internal/mem"
	"vprobe/internal/numa"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
	"vprobe/internal/xen"
)

func coreDyn() *core.DynamicBounds   { return core.NewDynamicBounds() }
func coreDefaultBounds() core.Bounds { return core.DefaultBounds() }

func TestRegistry(t *testing.T) {
	for _, kind := range sched.Kinds() {
		p, err := sched.New(kind)
		if err != nil {
			t.Fatalf("%s: %v", kind, err)
		}
		if p.Name() == "" {
			t.Fatalf("%s: empty name", kind)
		}
	}
	if _, err := sched.New("bogus"); err == nil {
		t.Fatal("unknown kind accepted")
	}
	if got := len(sched.PaperOrder()); got != 5 {
		t.Fatalf("PaperOrder has %d entries", got)
	}
	if sched.PaperOrder()[0] != sched.KindCredit || sched.PaperOrder()[1] != sched.KindVProbe {
		t.Fatal("paper order wrong")
	}
}

func TestMustNewPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew with bad kind did not panic")
		}
	}()
	sched.MustNew("bogus")
}

func TestPolicyProperties(t *testing.T) {
	cases := []struct {
		kind      sched.Kind
		name      string
		pmu       bool
		aware     bool
		hasPeriod bool
	}{
		{sched.KindCredit, "Credit", false, false, false},
		{sched.KindVProbe, "vProbe", true, true, true},
		{sched.KindVCPUP, "VCPU-P", true, false, true},
		{sched.KindLB, "LB", true, true, true},
		{sched.KindBRM, "BRM", true, false, true},
	}
	for _, c := range cases {
		p := sched.MustNew(c.kind)
		if p.Name() != c.name {
			t.Errorf("%s: name %q, want %q", c.kind, p.Name(), c.name)
		}
		if p.UsesPMU() != c.pmu {
			t.Errorf("%s: UsesPMU = %v", c.kind, p.UsesPMU())
		}
		if p.NUMAAwareBalance() != c.aware {
			t.Errorf("%s: NUMAAwareBalance = %v", c.kind, p.NUMAAwareBalance())
		}
		if (p.Period() > 0) != c.hasPeriod {
			t.Errorf("%s: Period = %v", c.kind, p.Period())
		}
	}
}

func TestVProbeVariantNames(t *testing.T) {
	v := sched.NewVProbe()
	v.DisableAffinity = true
	if v.Name() != "vProbe(no-affinity)" {
		t.Fatalf("name = %q", v.Name())
	}
	d := sched.NewVProbe()
	d.Dynamic = nil
	if d.Name() != "vProbe" {
		t.Fatalf("name = %q", d.Name())
	}
}

// run executes a small standard scenario and returns VM1's mean remote
// ratio and exec seconds.
func run(t *testing.T, kind sched.Kind) (remote, exec float64) {
	t.Helper()
	cfg := xen.DefaultConfig()
	cfg.Seed = 3
	h := xen.New(numa.XeonE5620(), sched.MustNew(kind), cfg)
	vm1, err := h.CreateDomain("vm1", 15*1024, 8, mem.PolicyStripe)
	if err != nil {
		t.Fatal(err)
	}
	vm2, _ := h.CreateDomain("vm2", 5*1024, 8, mem.PolicyFill)
	vm3, _ := h.CreateDomain("vm3", 1024, 8, mem.PolicyFill)
	for i := 0; i < 4; i++ {
		p := workload.Soplex().Scale(0.3)
		if _, err := h.AttachApp(vm1, i, p); err != nil {
			t.Fatal(err)
		}
		q := workload.Soplex().Scale(0.3)
		h.AttachApp(vm2, i, q)
	}
	for i := 4; i < 8; i++ {
		h.AttachApp(vm1, i, workload.GuestIdle())
		h.AttachApp(vm2, i, workload.GuestIdle())
	}
	for i := 0; i < 8; i++ {
		h.AttachApp(vm3, i, workload.Hungry())
	}
	h.WatchDomains(vm1)
	end := h.Run(600 * sim.Second)

	var total, rem, execSum float64
	n := 0
	for _, v := range vm1.VCPUs {
		if v.App == nil || v.App.Endless() {
			continue
		}
		total += v.Counters.Total()
		rem += v.Counters.Remote
		fin := end
		if v.Done {
			fin = v.FinishTime
		}
		execSum += fin.Seconds()
		n++
	}
	return rem / total, execSum / float64(n)
}

func TestSchedulerOrdering(t *testing.T) {
	creditRemote, creditExec := run(t, sched.KindCredit)
	vprobeRemote, vprobeExec := run(t, sched.KindVProbe)
	if vprobeRemote >= creditRemote {
		t.Fatalf("vProbe remote %.2f >= Credit %.2f", vprobeRemote, creditRemote)
	}
	if vprobeExec >= creditExec {
		t.Fatalf("vProbe exec %.2fs >= Credit %.2fs", vprobeExec, creditExec)
	}
}

func TestBRMHasLockOverhead(t *testing.T) {
	// BRM must pay measurable bookkeeping beyond vProbe's (the global
	// lock convoy), visible as per-VCPU overhead time.
	cfg := xen.DefaultConfig()
	mk := func(kind sched.Kind) sim.Duration {
		h := xen.New(numa.XeonE5620(), sched.MustNew(kind), cfg)
		d, _ := h.CreateDomain("vm", 8*1024, 8, mem.PolicyStripe)
		for i := 0; i < 8; i++ {
			h.AttachApp(d, i, workload.Hungry())
		}
		// Enough registered VCPUs to exceed BRM's lock-free budget.
		d2, _ := h.CreateDomain("vm2", 8*1024, 8, mem.PolicyFill)
		for i := 0; i < 8; i++ {
			h.AttachApp(d2, i, workload.Hungry())
		}
		h.Run(3 * sim.Second)
		var total sim.Duration
		for _, v := range h.AllVCPUs() {
			total += v.OverheadTime
		}
		return total
	}
	brm := mk(sched.KindBRM)
	vprobe := mk(sched.KindVProbe)
	if brm <= vprobe {
		t.Fatalf("BRM overhead %v not above vProbe %v", brm, vprobe)
	}
}

func TestLBNeverPartitions(t *testing.T) {
	cfg := xen.DefaultConfig()
	h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindLB), cfg)
	d, _ := h.CreateDomain("vm", 8*1024, 4, mem.PolicyStripe)
	for i := 0; i < 4; i++ {
		h.AttachApp(d, i, workload.Libquantum())
	}
	h.Run(3 * sim.Second)
	for _, v := range d.VCPUs {
		if v.AssignedNode != numa.NoNode {
			t.Fatalf("LB assigned VCPU %d to node %v", v.ID, v.AssignedNode)
		}
	}
}

func TestVProbePartitionsMemoryIntensive(t *testing.T) {
	cfg := xen.DefaultConfig()
	h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindVProbe), cfg)
	d, _ := h.CreateDomain("vm", 8*1024, 5, mem.PolicyStripe)
	for i := 0; i < 4; i++ {
		h.AttachApp(d, i, workload.Libquantum())
	}
	h.AttachApp(d, 4, workload.Povray()) // LLC-FR: not partitioned
	h.Run(3 * sim.Second)
	loads := make(map[numa.NodeID]int)
	for i := 0; i < 4; i++ {
		v := d.VCPUs[i]
		if v.AssignedNode == numa.NoNode {
			t.Fatalf("memory-intensive VCPU %d unassigned", v.ID)
		}
		loads[v.AssignedNode]++
	}
	if loads[0] != 2 || loads[1] != 2 {
		t.Fatalf("assignments unbalanced: %v", loads)
	}
	if d.VCPUs[4].AssignedNode != numa.NoNode {
		t.Fatal("LLC-FR VCPU was partitioned")
	}
}

func TestDynamicBoundsAdaptDuringRun(t *testing.T) {
	v := sched.NewVProbe()
	v.Dynamic = coreDyn()
	cfg := xen.DefaultConfig()
	h := xen.New(numa.XeonE5620(), v, cfg)
	d, _ := h.CreateDomain("vm", 8*1024, 8, mem.PolicyStripe)
	apps := []func() *workload.Profile{
		workload.Soplex, workload.Libquantum, workload.MCF, workload.Milc,
		workload.LU, workload.MG, workload.CG, workload.SP,
	}
	for i, mk := range apps {
		h.AttachApp(d, i, mk())
	}
	h.Run(6 * sim.Second)
	if v.Analyzer.Bounds == coreDefaultBounds() {
		t.Fatal("dynamic bounds never adapted")
	}
	if err := v.Analyzer.Bounds.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestBRMStealsWithBias exercises BRM's biased-random stealing under
// overcommit: the policy must keep the machine busy, migrate VCPUs, and
// still favour memory-local placements over a uniform random walk.
func TestBRMStealsWithBias(t *testing.T) {
	cfg := xen.DefaultConfig()
	cfg.Seed = 7
	h := xen.New(numa.XeonE5620(), sched.MustNew(sched.KindBRM), cfg)
	d, _ := h.CreateDomain("vm", 8*1024, 8, mem.PolicyStripe)
	for i := 0; i < 4; i++ {
		h.AttachApp(d, i, workload.Libquantum())
	}
	for i := 4; i < 8; i++ {
		h.AttachApp(d, i, workload.GuestIdle())
	}
	d2, _ := h.CreateDomain("vm2", 1024, 8, mem.PolicyFill)
	for i := 0; i < 8; i++ {
		h.AttachApp(d2, i, workload.Hungry())
	}
	h.Run(10 * sim.Second)
	migrations := 0
	var work float64
	for i := 0; i < 4; i++ {
		migrations += d.VCPUs[i].Migrations
		work += d.VCPUs[i].InstrDone
	}
	if migrations == 0 {
		t.Fatal("BRM never migrated a VCPU")
	}
	if work <= 0 {
		t.Fatal("no work retired under BRM")
	}
	// Bias check: the memory VCPUs should not be fully mixed — their
	// remote ratio stays below the ~50% of an unbiased walk.
	var total, remote float64
	for i := 0; i < 4; i++ {
		total += d.VCPUs[i].Counters.Total()
		remote += d.VCPUs[i].Counters.Remote
	}
	if ratio := remote / total; ratio > 0.5 {
		t.Fatalf("BRM remote ratio %.2f — bias absent", ratio)
	}
}

// TestCreditNoOpHooks pins down that the baseline policy performs no
// periodic or per-tick PMU work.
func TestCreditNoOpHooks(t *testing.T) {
	c := sched.NewCredit()
	c.OnTick(nil, nil) // must not touch its arguments
	c.OnPeriod(nil)    // must not touch its argument
	if c.Period() != 0 {
		t.Fatal("Credit has a sampling period")
	}
}
