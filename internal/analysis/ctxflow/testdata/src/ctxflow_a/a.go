// Package ctxflow_a is the ctxflow fixture.
package ctxflow_a

import "context"

func needsCtx(ctx context.Context) error {
	return nil
}

// severed holds a ctx but mints a fresh root for its callee.
func severed(ctx context.Context) error {
	return needsCtx(context.Background()) // want `context\.Background\(\) discards the ctx already in scope`
}

// rootless has no ctx and conjures one instead of accepting a parameter.
func rootless() error {
	return needsCtx(context.TODO()) // want `context\.TODO\(\) in internal package`
}

// threaded passes the caller's context on: clean.
func threaded(ctx context.Context) error {
	return needsCtx(ctx)
}

// derived contexts are threading, not severing: clean.
func derived(ctx context.Context) error {
	sub, cancel := context.WithCancel(ctx)
	defer cancel()
	return needsCtx(sub)
}

// compat is the sanctioned escape for pre-context wrappers.
func compat() error {
	return needsCtx(context.Background()) //vet:ctx compat wrapper for pre-context callers
}

// literalScope: a func literal with its own ctx param counts as in-scope.
func literalScope() func(context.Context) error {
	return func(ctx context.Context) error {
		return needsCtx(context.Background()) // want `context\.Background\(\) discards the ctx already in scope`
	}
}
