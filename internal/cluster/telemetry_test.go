package cluster

import (
	"bytes"
	"context"
	"fmt"
	"strings"
	"testing"

	"vprobe/internal/sim"
	"vprobe/internal/telemetry"
)

// telemetryCfg is a busy little cluster: high arrival rate onto two hosts
// forces retries and rejections, the batch mix plus a low pressure limit
// forces migrations — every event kind and every gauge moves.
func telemetryCfg() Config {
	return Config{
		Hosts:             3,
		Horizon:           150 * sim.Second,
		Seed:              11,
		ArrivalsPerSecond: 0.8,
		MeanLifetime:      100 * sim.Second,
		Mix:               "batch",
		Policy:            "pack",
		LLCPressureLimit:  20,
		RebalancePeriod:   5 * sim.Second,
		Workers:           1,
	}
}

// TestClusterEventIdentity is the identity invariant: no cluster event may
// reach a sink with both Host and VM empty, VM is always set, and the
// host-scoped kinds always carry a host name.
func TestClusterEventIdentity(t *testing.T) {
	cfg := telemetryCfg()
	seen := map[EventKind]int{}
	cfg.Events = func(ev Event) {
		seen[ev.Kind]++
		if ev.Host == "" && ev.VM == "" {
			t.Fatalf("%s event at %v with no identity: %q", ev.Kind, ev.At, ev.Detail)
		}
		if ev.VM == "" {
			t.Fatalf("%s event at %v without a VM: %q", ev.Kind, ev.At, ev.Detail)
		}
		switch ev.Kind {
		case EventVMPlace, EventVMDepart, EventMigrateStart, EventMigrateDone:
			if ev.Host == "" {
				t.Fatalf("%s event at %v without a host: %q", ev.Kind, ev.At, ev.Detail)
			}
		}
	}
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Run(context.Background()); err != nil {
		t.Fatal(err)
	}
	// The invariant is only meaningful if the run exercised every path.
	for _, kind := range []EventKind{
		EventVMArrive, EventVMPlace, EventVMRetry, EventVMReject,
		EventVMDepart, EventMigrateStart,
	} {
		if seen[kind] == 0 {
			t.Fatalf("scenario never emitted %s; invariant untested", kind)
		}
	}
}

// TestClusterTelemetrySeries runs an instrumented cluster and checks the
// exported series against the report.
func TestClusterTelemetrySeries(t *testing.T) {
	cfg := telemetryCfg()
	s := telemetry.NewSampler(telemetry.NewRegistry(), sim.Second)
	cfg.Telemetry = s
	c, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := c.Run(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if got, want := s.Rows(), int(cfg.Horizon/sim.Second); got != want {
		t.Fatalf("sampled %d rows over %v, want %d", got, cfg.Horizon, want)
	}

	var buf bytes.Buffer
	if err := s.Registry().WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	series, _, err := telemetry.ValidateExposition(buf.Bytes())
	if err != nil {
		t.Fatalf("exposition invalid: %v", err)
	}
	if series < 10 {
		t.Fatalf("only %d series exported, want >= 10", series)
	}
	// The lifecycle gauges must agree with the report at the horizon.
	for name, want := range map[string]int{
		"cluster_vm_arrivals":   rep.Arrivals,
		"cluster_vm_placed":     rep.Placed,
		"cluster_vm_retries":    rep.Retries,
		"cluster_vm_rejected":   rep.Rejected,
		"cluster_vm_departed":   rep.Departed,
		"cluster_vm_migrations": rep.Migrations,
	} {
		line := fmt.Sprintf("%s %d\n", name, want)
		if !strings.Contains(out, line) {
			t.Fatalf("exposition missing %q (report says %d)", line, want)
		}
	}
	// Per-host series must exist for every host.
	for i := 0; i < cfg.Hosts; i++ {
		for _, name := range []string{
			"cluster_host_vms", "cluster_host_free_mb", "xen_dispatches_total",
		} {
			probe := fmt.Sprintf(`%s{host="host%d"}`, name, i)
			if !strings.Contains(out, probe) {
				t.Fatalf("exposition missing %s", probe)
			}
		}
	}
}

// TestClusterTelemetryDoesNotPerturb is the acceptance criterion: report
// and event log are byte-identical with telemetry on or off, at worker
// counts 1, 4, and 8.
func TestClusterTelemetryDoesNotPerturb(t *testing.T) {
	var want string
	for _, workers := range []int{1, 4, 8} {
		for _, withTele := range []bool{false, true} {
			cfg := telemetryCfg()
			cfg.Workers = workers
			var log strings.Builder
			cfg.Events = func(ev Event) {
				fmt.Fprintf(&log, "%v %s %s %s %s\n", ev.At, ev.Kind, ev.Host, ev.VM, ev.Detail)
			}
			if withTele {
				cfg.Telemetry = telemetry.NewSampler(telemetry.NewRegistry(), sim.Second)
			}
			c, err := New(cfg)
			if err != nil {
				t.Fatal(err)
			}
			rep, err := c.Run(context.Background())
			if err != nil {
				t.Fatal(err)
			}
			got := rep.String() + "\n" + log.String()
			if want == "" {
				want = got
				continue
			}
			if got != want {
				t.Fatalf("run diverges at workers=%d telemetry=%v", workers, withTele)
			}
		}
	}
}
