package workload

import "testing"

func TestParseSpecBasics(t *testing.T) {
	ps, err := ParseSpec("soplex:4,hungry:8")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 12 {
		t.Fatalf("parsed %d profiles, want 12", len(ps))
	}
	if ps[0].Name != "soplex" || ps[4].Name != "hungry" {
		t.Fatalf("wrong order: %s, %s", ps[0].Name, ps[4].Name)
	}
	// Instances must be independent clones.
	ps[0].TotalInstructions = 1
	if ps[1].TotalInstructions == 1 {
		t.Fatal("instances share storage")
	}
}

func TestParseSpecBareName(t *testing.T) {
	ps, err := ParseSpec("mcf")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 1 || ps[0].Name != "mcf" {
		t.Fatalf("parsed %v", ps)
	}
}

func TestParseSpecServers(t *testing.T) {
	ps, err := ParseSpec("memcached@64:8, redis@2000:4")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 12 {
		t.Fatalf("parsed %d profiles", len(ps))
	}
	if !ps[0].Server || ps[0].Name != "memcached-c64" {
		t.Fatalf("first profile = %+v", ps[0])
	}
	if ps[8].Name != "redis-p2000" {
		t.Fatalf("ninth profile = %s", ps[8].Name)
	}
}

func TestParseSpecWhitespaceAndEmpties(t *testing.T) {
	ps, err := ParseSpec(" lu : 2 ,, mg ")
	if err != nil {
		t.Fatal(err)
	}
	if len(ps) != 3 {
		t.Fatalf("parsed %d profiles", len(ps))
	}
}

func TestParseSpecErrors(t *testing.T) {
	bad := []string{
		"",
		"   ,  ",
		"soplex:0",
		"soplex:x",
		"doom",
		"memcached",     // missing load
		"memcached@0:2", // bad load
		"memcached@x:2", // bad load
		"soplex@4",      // load on fixed profile
		"redis",         // missing load
	}
	for _, spec := range bad {
		if _, err := ParseSpec(spec); err == nil {
			t.Errorf("spec %q accepted", spec)
		}
	}
}
