package vprobe

import (
	"io"

	"vprobe/internal/telemetry"
)

// TracingOptions configures NewTracing.
type TracingOptions struct {
	// Limit caps the number of recorded spans (default 1 Mi spans; spans
	// past the cap are counted in Dropped, never recorded).
	Limit int
}

// Tracing records a run's placement flight recorder: virtual-time spans
// for VM lifecycles, placement decisions with their full per-plugin
// filter/score provenance, migrations, preemptions, gang admissions,
// backfills, and descheduler moves. Create it with NewTracing, hand it to
// exactly one Config or ClusterConfig, and after the run export the spans
// with WriteSpans (JSONL, the vprobe-explain input format) or
// WriteChromeTrace (loadable in Perfetto or chrome://tracing).
//
// Span IDs derive deterministically from the run seed, and all recording
// happens on the deterministic engine goroutine off the quantum hot path:
// the same seed yields the same span file byte for byte at every worker
// count, and attaching tracing never changes simulation results — reports
// and event streams stay byte-identical with tracing on or off.
type Tracing struct {
	limit    int
	tracer   *telemetry.Tracer
	attached bool
}

// NewTracing builds an empty flight recorder.
func NewTracing(opts TracingOptions) *Tracing {
	return &Tracing{limit: opts.Limit}
}

// attach claims the recorder for one run, building the tracer with the
// run's effective seed (span IDs derive from it); a second claim fails
// with ErrTracingAttached.
func (t *Tracing) attach(seed uint64) (*telemetry.Tracer, error) {
	if t.attached {
		return nil, ErrTracingAttached
	}
	t.attached = true
	t.tracer = telemetry.NewTracer(seed, t.limit)
	return t.tracer, nil
}

// Spans is the number of spans recorded so far.
func (t *Tracing) Spans() int { return t.tracer.Len() }

// Dropped is the number of spans discarded past the configured limit.
func (t *Tracing) Dropped() int { return t.tracer.Dropped() }

// WriteSpans writes the recorded spans as JSON Lines, one span per line
// in record order — the input format of vprobe-explain. An empty recorder
// writes a valid zero-line stream.
func (t *Tracing) WriteSpans(w io.Writer) error {
	return t.tracer.WriteSpansJSONL(w)
}

// WriteChromeTrace writes the recorded spans as Chrome trace-event JSON,
// loadable in Perfetto or chrome://tracing. Hosts map to threads.
func (t *Tracing) WriteChromeTrace(w io.Writer) error {
	return t.tracer.WriteChromeTrace(w)
}
