package cluster

import (
	"fmt"
	"sort"

	"vprobe/internal/mem"
	"vprobe/internal/numa"
)

// The policy registry mirrors internal/sched's scheduler registry:
// policies are named pipeline constructors, selectable by CLI flag or
// experiment config, and Pipelines are stateless so a fresh one per
// cluster is cheap.

var policyRegistry = map[string]func() *Pipeline{}

// RegisterPolicy adds a named pipeline constructor. Registering a
// duplicate name panics: policies are wired at init time, and a silent
// overwrite would make experiment results depend on init order.
func RegisterPolicy(name string, mk func() *Pipeline) {
	if _, dup := policyRegistry[name]; dup {
		panic(fmt.Sprintf("cluster: duplicate policy %q", name))
	}
	policyRegistry[name] = mk
}

// NewPipeline constructs a fresh pipeline for a registered policy name.
func NewPipeline(name string) (*Pipeline, error) {
	mk, ok := policyRegistry[name]
	if !ok {
		return nil, fmt.Errorf("cluster: unknown policy %q (have %v)", name, Policies())
	}
	return mk(), nil
}

// Policies returns the registered policy names in sorted order.
func Policies() []string {
	names := make([]string, 0, len(policyRegistry))
	for n := range policyRegistry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

func init() {
	// pack consolidates: fullest feasible host wins and memory fills from
	// node 0, approximating a non-NUMA-aware capacity-driven placer.
	RegisterPolicy("pack", func() *Pipeline {
		return &Pipeline{
			Name:    "pack",
			Filters: []FilterPlugin{CapacityFilter{}},
			Scorers: []WeightedScore{{PackScore{}, 1}},
			MemPlan: func(*VMSpec, *HostView) MemPlan {
				return MemPlan{Policy: mem.PolicyFill}
			},
		}
	})

	// spread load-balances: emptiest host wins and memory stripes across
	// nodes — maximum headroom everywhere, no NUMA awareness.
	RegisterPolicy("spread", func() *Pipeline {
		return &Pipeline{
			Name:    "spread",
			Filters: []FilterPlugin{CapacityFilter{}},
			Scorers: []WeightedScore{{LeastLoadedScore{}, 1}},
			MemPlan: func(*VMSpec, *HostView) MemPlan {
				return MemPlan{Policy: mem.PolicyStripe}
			},
		}
	})

	// numa is the NUMA-aware policy: Gudkov-style available-space
	// admission (a VM may span at most 2 nodes), then a blend of
	// single-node fit, cluster-wide LLC-pressure balance, and load. An
	// admitted VM's memory goes local to its best node when it fits on
	// one node, and stripes otherwise.
	RegisterPolicy("numa", func() *Pipeline {
		return &Pipeline{
			Name: "numa",
			Filters: []FilterPlugin{
				CapacityFilter{},
				NUMAFitFilter{MaxSplit: 2},
			},
			Scorers: []WeightedScore{
				{NUMAFitScore{}, 1},
				{LLCBalanceScore{}, 1},
				{LeastLoadedScore{}, 0.5},
			},
			MemPlan: func(spec *VMSpec, hv *HostView) MemPlan {
				if node, free := hv.bestNode(); node != numa.NoNode && free >= spec.MemoryMB {
					return MemPlan{Policy: mem.PolicyLocal, Preferred: node}
				}
				return MemPlan{Policy: mem.PolicyStripe}
			},
		}
	})
}
