package experiments

import (
	"context"
	"strings"
	"testing"

	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
)

// testOpts keeps shape tests fast while preserving enough virtual time for
// the mechanisms (sampling periods, first touch) to act.
func testOpts() Options {
	return Options{Scale: 0.35, Repeats: 2, Seed: 1}.normalized()
}

func TestRegistryComplete(t *testing.T) {
	want := []string{
		"table1", "fig1", "fig3", "fig4", "fig5", "fig6", "fig7", "fig8",
		"table3", "ablate-affinity", "ablate-dynamic", "ablate-pagemig",
		"fournode", "sensitivity-bounds", "cluster-controlplane",
	}
	ids := IDs()
	have := map[string]bool{}
	for _, id := range ids {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("experiment %q not registered (have %v)", id, ids)
		}
	}
	if len(All()) != len(ids) {
		t.Fatal("All() and IDs() disagree")
	}
	for _, e := range All() {
		if e.Title == "" || e.Paper == "" || e.run == nil {
			t.Errorf("experiment %q incomplete", e.ID)
		}
	}
}

func TestByIDUnknown(t *testing.T) {
	if _, err := ByID("fig99"); err == nil {
		t.Fatal("unknown id accepted")
	}
}

func TestResultSeries(t *testing.T) {
	r := &Result{ID: "x"}
	r.Set("a/b", "c", 1.5)
	if got := r.Get("a/b", "c"); got != 1.5 {
		t.Fatalf("Get = %v", got)
	}
	if got := r.Get("missing", "c"); got != 0 {
		t.Fatalf("missing Get = %v", got)
	}
	if !strings.Contains(r.String(), "x") {
		t.Fatal("String() missing id")
	}
}

func TestOptionsNormalization(t *testing.T) {
	o := Options{}.normalized()
	if o.Scale != DefaultScale || o.Seed != 1 || o.Repeats != 3 {
		t.Fatalf("defaults = %+v", o)
	}
	if len(o.Schedulers) != 5 {
		t.Fatalf("schedulers = %v", o.Schedulers)
	}
}

func TestTable1MatchesPaper(t *testing.T) {
	res, err := runTable1(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Get("nodes/config", "nodes") != 2 || res.Get("cpus/config", "cpus") != 8 {
		t.Fatalf("platform mismatch: %+v", res.Series)
	}
}

// TestVProbeBeatsCredit asserts the headline shape on the soplex workload:
// vProbe completes the measured VM's work substantially faster than the
// stock Credit scheduler (paper: 32.5% faster; we require >= 15% at test
// scale).
func TestVProbeBeatsCredit(t *testing.T) {
	opts := testOpts()
	opts.Schedulers = []sched.Kind{sched.KindCredit, sched.KindVProbe}
	outs, err := runSchedulers(context.Background(), "",
		replicate(workload.Soplex(), 4), replicate(workload.Soplex(), 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	credit := meanExec(outs[sched.KindCredit], false)
	vprobe := meanExec(outs[sched.KindVProbe], false)
	if vprobe >= credit*0.85 {
		t.Fatalf("vProbe %.2fs vs Credit %.2fs — improvement below 15%%", vprobe, credit)
	}
}

// TestVCPUPAndLBBetweenExtremes asserts the paper's ordering: both
// single-mechanism ablations beat Credit but not vProbe.
func TestVCPUPAndLBBetweenExtremes(t *testing.T) {
	opts := testOpts()
	opts.Schedulers = []sched.Kind{
		sched.KindCredit, sched.KindVProbe, sched.KindVCPUP, sched.KindLB,
	}
	outs, err := runSchedulers(context.Background(), "",
		replicate(workload.Milc(), 4), replicate(workload.Milc(), 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	credit := meanExec(outs[sched.KindCredit], false)
	vprobe := meanExec(outs[sched.KindVProbe], false)
	vcpup := meanExec(outs[sched.KindVCPUP], false)
	lb := meanExec(outs[sched.KindLB], false)
	if vcpup >= credit {
		t.Errorf("VCPU-P (%.2fs) did not beat Credit (%.2fs)", vcpup, credit)
	}
	if lb >= credit {
		t.Errorf("LB (%.2fs) did not beat Credit (%.2fs)", lb, credit)
	}
	if vprobe > vcpup*1.02 {
		t.Errorf("vProbe (%.2fs) worse than VCPU-P (%.2fs)", vprobe, vcpup)
	}
}

// TestVProbeReducesRemoteAccesses asserts the Fig. 4(c) shape: vProbe's
// remote access count is a small fraction of Credit's.
func TestVProbeReducesRemoteAccesses(t *testing.T) {
	opts := testOpts()
	opts.Schedulers = []sched.Kind{sched.KindCredit, sched.KindVProbe}
	outs, err := runSchedulers(context.Background(), "",
		replicate(workload.Libquantum(), 4), replicate(workload.Libquantum(), 4), opts)
	if err != nil {
		t.Fatal(err)
	}
	var creditRemote, vprobeRemote float64
	for _, so := range outs[sched.KindCredit].seeds {
		for _, r := range so.runs {
			creditRemote += r.Remote
		}
	}
	for _, so := range outs[sched.KindVProbe].seeds {
		for _, r := range so.runs {
			vprobeRemote += r.Remote
		}
	}
	if vprobeRemote >= 0.5*creditRemote {
		t.Fatalf("vProbe remote %.3g not well below Credit %.3g", vprobeRemote, creditRemote)
	}
}

func meanExec(b batchOut, threaded bool) float64 {
	var vals []float64
	for _, so := range b.seeds {
		vals = append(vals, execMetric(so.runs, nil, threaded))
	}
	return sim.Mean(vals)
}

// TestFig1RemoteRatiosHigh asserts the §II-B motivation: under Credit the
// page-level remote ratio is high for every memory-intensive app.
func TestFig1RemoteRatiosHigh(t *testing.T) {
	opts := testOpts()
	res, err := runFig1(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for app, v := range res.Series["page-remote/credit"] {
		if v < 0.5 {
			t.Errorf("%s: page-remote %.1f%% below 50%% — motivation not reproduced", app, 100*v)
		}
	}
	// soplex is the paper's lowest.
	soplex := res.Get("page-remote/credit", "soplex")
	for app, v := range res.Series["page-remote/credit"] {
		if app == "soplex" || app == "mcf" {
			continue // mcf's 6/2 split makes it structurally close to soplex
		}
		if v < soplex-0.03 {
			t.Errorf("%s (%.1f%%) well below soplex (%.1f%%), paper has soplex lowest", app, 100*v, 100*soplex)
		}
	}
}

// TestFig3Calibration asserts Fig. 3's published RPTI values come out of a
// full simulation, not just the catalog.
func TestFig3Calibration(t *testing.T) {
	res, err := runFig3(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"povray": 0.48, "ep": 2.01, "lu": 15.38,
		"mg": 16.33, "milc": 21.68, "libquantum": 22.41,
	}
	for app, rpti := range want {
		got := res.Get("rpti/solo", app)
		if got < rpti*0.93 || got > rpti*1.07 {
			t.Errorf("%s: measured RPTI %.2f, paper %.2f", app, got, rpti)
		}
	}
	// Miss-rate ordering mirrors the RPTI ordering.
	if res.Get("missrate/solo", "povray") >= res.Get("missrate/solo", "lu") {
		t.Error("povray misses more than lu")
	}
	if res.Get("missrate/solo", "lu") >= res.Get("missrate/solo", "libquantum") {
		t.Error("lu misses more than libquantum")
	}
}

// TestFig6ImprovementGrowsWithConcurrency asserts the Fig. 6 trend: the
// gain over Credit at high concurrency exceeds the gain at low
// concurrency (working set outgrows the LLC).
func TestFig6ImprovementGrowsWithConcurrency(t *testing.T) {
	opts := testOpts()
	opts.Schedulers = []sched.Kind{sched.KindCredit, sched.KindVProbe}
	run := func(conc int) float64 {
		prof := workload.Memcached(conc)
		prof.TotalInstructions = 40000 * prof.InstrPerRequest
		outs, err := runSchedulers(context.Background(), "", replicate(prof, 8), replicate(prof, 8), opts)
		if err != nil {
			t.Fatal(err)
		}
		credit := meanExec(outs[sched.KindCredit], true)
		vprobe := meanExec(outs[sched.KindVProbe], true)
		return 1 - vprobe/credit
	}
	low := run(16)
	high := run(112)
	if high <= low {
		t.Fatalf("improvement did not grow with concurrency: 16 -> %.1f%%, 112 -> %.1f%%",
			100*low, 100*high)
	}
}

// TestFig8UShape asserts the sampling-period sweep is U-ish: 0.1 s is
// worse than 1 s, and very long periods do not beat the 1-2 s region.
func TestFig8UShape(t *testing.T) {
	opts := testOpts()
	res, err := runFig8(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	e := func(label string) float64 { return res.Get("exec/vprobe", label) }
	if e("100.000ms") <= e("1.000s") {
		t.Errorf("0.1s period (%.2fs) not worse than 1s (%.2fs)", e("100.000ms"), e("1.000s"))
	}
	min := e("1.000s")
	if v := e("2.000s"); v < min {
		min = v
	}
	if e("10.000s") < min*0.98 {
		t.Errorf("10s period (%.2fs) beats the 1-2s region (%.2fs)", e("10.000s"), min)
	}
	// Overhead falls monotonically with the period.
	if res.Get("overhead/vprobe", "100.000ms") <= res.Get("overhead/vprobe", "1.000s") {
		t.Error("short periods should cost more overhead")
	}
}

// TestTable3OverheadNegligible asserts the paper's headline: vProbe's
// overhead time is far below 0.1% for 1-4 VMs.
func TestTable3OverheadNegligible(t *testing.T) {
	res, err := runTable3(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	for _, vms := range []string{"1", "2", "3", "4"} {
		pct := res.Get("overhead/vprobe", vms)
		if pct <= 0 {
			t.Errorf("%s VMs: zero overhead reported", vms)
		}
		if pct > 0.1 {
			t.Errorf("%s VMs: overhead %.4f%% above 0.1%%", vms, pct)
		}
	}
}

// TestAffinityAblation asserts Eq. 1 is load-bearing: erasing affinity
// information makes vProbe dramatically worse.
func TestAffinityAblation(t *testing.T) {
	res, err := runAblateAffinity(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	with := res.Get("exec/vprobe", "mix")
	without := res.Get("exec/vprobe-no-affinity", "mix")
	if without <= with*1.10 {
		t.Fatalf("no-affinity (%.2fs) not clearly worse than vProbe (%.2fs)", without, with)
	}
}

// TestFourNodeGeneralizes asserts vProbe's advantage holds with N = 4.
func TestFourNodeGeneralizes(t *testing.T) {
	res, err := runFourNode(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	credit := res.Get("exec/credit", "fournode")
	vprobe := res.Get("exec/vprobe", "fournode")
	if vprobe >= credit*0.9 {
		t.Fatalf("4-node vProbe (%.2fs) not clearly better than Credit (%.2fs)", vprobe, credit)
	}
	if res.Get("remote/vprobe", "fournode") >= res.Get("remote/credit", "fournode") {
		t.Fatal("4-node vProbe did not reduce remote ratio")
	}
}

// TestDeterministicExperiments asserts repeated runs produce identical
// series.
func TestDeterministicExperiments(t *testing.T) {
	opts := testOpts()
	opts.Repeats = 1
	a, err := runFig3(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	b, err := runFig3(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	for series, m := range a.Series {
		for label, v := range m {
			if b.Get(series, label) != v {
				t.Fatalf("nondeterministic: %s/%s %v vs %v", series, label, v, b.Get(series, label))
			}
		}
	}
}

// TestControlPlanePreemptionHelpsCritical is the control-plane acceptance
// bar: at equal offered load, enabling preemption strictly reduces the
// critical class's mean admission wait, and the mechanism actually fires.
func TestControlPlanePreemptionHelpsCritical(t *testing.T) {
	res, err := runControlPlane(context.Background(), testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Get("preemptions", "preempt") == 0 {
		t.Fatal("preempt variant never preempted under overload")
	}
	none := res.Get("crit-wait", "none")
	preempt := res.Get("crit-wait", "preempt")
	if preempt >= none {
		t.Fatalf("critical mean wait %.2fs with preemption, %.2fs without — no strict improvement",
			preempt, none)
	}
	// The full bundle must also report its remaining mechanisms firing.
	for _, series := range []string{"gangs", "backfills"} {
		if res.Get(series, "full") == 0 {
			t.Errorf("full variant reports zero %s", series)
		}
	}
}
