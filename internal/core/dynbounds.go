package core

import "sort"

// DynamicBounds implements the paper's §VI future-work item: adapting the
// classification bounds to the running workload instead of fixing them at
// (3, 20). It tracks the distribution of observed pressures over a sliding
// window of sampling periods and re-derives the bounds from quantiles, so
// the LLC-T / LLC-FI / LLC-FR split follows the population actually
// present rather than an offline calibration.
//
// The quantile targets default to the shape of the paper's calibration:
// pressures below the 25th percentile of the *active* (non-negligible)
// population behave like LLC-FR, and the top ~30% like LLC-T.
type DynamicBounds struct {
	// Window is the number of recent samples kept (across all VCPUs).
	Window int
	// LowQ and HighQ are the quantiles mapped to the low/high bounds.
	LowQ, HighQ float64
	// Floor keeps the low bound from collapsing when every VCPU is
	// memory-intensive; pressures below Floor are always LLC-FR.
	Floor float64

	samples []float64
	bounds  Bounds
}

// NewDynamicBounds returns an adaptor seeded with the paper's static
// bounds; until enough samples arrive, Current() returns those.
func NewDynamicBounds() *DynamicBounds {
	return &DynamicBounds{
		Window: 256,
		LowQ:   0.25,
		HighQ:  0.70,
		Floor:  1.0,
		bounds: DefaultBounds(),
	}
}

// Observe records the pressures measured in one sampling period and
// re-derives the bounds once at least 8 active samples are buffered.
func (d *DynamicBounds) Observe(pressures []float64) {
	for _, p := range pressures {
		if p <= 0 {
			continue
		}
		d.samples = append(d.samples, p) //vet:alloc ring grows to Window once, then slides in place
	}
	if d.Window > 0 && len(d.samples) > d.Window {
		d.samples = d.samples[len(d.samples)-d.Window:]
	}
	//vet:alloc bounds adaptation runs once per sampling period (1s simulated), not per quantum
	active := make([]float64, 0, len(d.samples))
	for _, p := range d.samples {
		if p >= d.Floor {
			active = append(active, p) //vet:alloc capacity pre-sized to len(samples) above
		}
	}
	if len(active) < 8 {
		return
	}
	sort.Float64s(active)
	//vet:alloc per-period quantile helper; non-escaping, and OnPeriod cadence is 1s simulated
	q := func(f float64) float64 {
		pos := f * float64(len(active)-1)
		lo := int(pos)
		if lo+1 >= len(active) {
			return active[len(active)-1]
		}
		frac := pos - float64(lo)
		return active[lo]*(1-frac) + active[lo+1]*frac
	}
	low := q(d.LowQ)
	high := q(d.HighQ)
	if low < d.Floor {
		low = d.Floor
	}
	if high <= low {
		high = low * 1.5
	}
	d.bounds = Bounds{Low: low, High: high}
}

// Current returns the bounds in effect.
func (d *DynamicBounds) Current() Bounds { return d.bounds }

// SampleCount returns how many samples are buffered (for tests).
func (d *DynamicBounds) SampleCount() int { return len(d.samples) }
