package experiments

import (
	"context"
	"fmt"

	"vprobe/internal/metrics"
	"vprobe/internal/sched"
	"vprobe/internal/sim"
	"vprobe/internal/workload"
)

// memcachedRequestTarget is the per-thread request count of one Fig. 6
// test at Scale = 1. The paper runs memslap for 50,000 iterations; the
// harness scales the target so one run spans many sampling periods (the
// mechanisms act at 1 s granularity), preserving the sweep's shape.
const memcachedRequestTarget = 250000

// runFig6 reproduces the memcached experiment: eight server worker threads
// in VM1 and VM2 each, concurrency swept 16..112, execution time of a
// fixed request batch reported (normalized to Credit).
func runFig6(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "fig6", Title: "Memcached under five schedulers (paper Fig. 6)"}
	var labels []string
	outs := map[string]map[sched.Kind]batchOut{}
	for conc := 16; conc <= 112; conc += 16 {
		label := fmt.Sprintf("%d", conc)
		labels = append(labels, label)
		prof := workload.Memcached(conc)
		prof.TotalInstructions = memcachedRequestTarget * prof.InstrPerRequest
		m, err := runSchedulers(ctx, "memcached-"+label, replicate(prof, 8), replicate(prof, 8), opts)
		if err != nil {
			return nil, err
		}
		outs[label] = m
	}
	addNormalizedFigure(r, "Fig. 6", labels, outs, opts, true)
	return r, nil
}

// redisHorizonFrac sets how much of the option horizon one Fig. 7
// measurement runs for; throughput is requests served per second over a
// fixed window (the paper fixes total requests instead — equivalent up to
// the metric's units).
func runFig7(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()
	r := &Result{ID: "fig7", Title: "Redis under five schedulers (paper Fig. 7)"}

	base := baselineKind(opts)
	window := opts.Horizon
	if w := 200 * opts.Horizon / 1000; w < window {
		window = w // 20% of horizon, servers run open-ended
	}

	tput := metrics.NewTable("Fig. 7(a) Average Throughput (req/s)",
		append([]string{"connections"}, schedColumns(opts)...)...)
	var labels []string
	outs := map[string]map[sched.Kind]batchOut{}
	for conn := 2000; conn <= 10000; conn += 2000 {
		label := fmt.Sprintf("%d", conn)
		labels = append(labels, label)
		server := workload.Redis(conn)
		// Four redis servers in VM1; four benchmark drivers in VM2
		// (client tools are CPU-bound load generators).
		clients := replicate(redisClient(), 4)
		wopts := opts
		wopts.Horizon = window
		m, err := runSchedulers(ctx, "redis-"+label, replicate(server, 4), clients, wopts)
		if err != nil {
			return nil, err
		}
		outs[label] = m
		cells := []string{label}
		for _, k := range opts.Schedulers {
			var thrs []float64
			for _, so := range m[k].seeds {
				if secs := so.end.Seconds(); secs > 0 {
					thrs = append(thrs, metrics.SumRequests(so.runs)/secs)
				}
			}
			thr := sim.Mean(thrs)
			r.Set("throughput/"+schedLabel(k), label, thr)
			cells = append(cells, fmt.Sprintf("%.0f", thr))
		}
		tput.AddRow(cells...)
	}
	tput.AddNote("higher is better; paper's peak gain: +26.0%% vs Credit at 2000 connections")
	r.Tables = append(r.Tables, tput)

	// Panels (b) and (c): normalized total/remote accesses.
	for _, panel := range []struct{ name, series string }{
		{"Fig. 7(b) Normalized Total Memory Accesses (per request)", "total"},
		{"Fig. 7(c) Normalized Remote Memory Accesses (per request)", "remote"},
	} {
		t := metrics.NewTable(panel.name, append([]string{"connections"}, schedColumns(opts)...)...)
		for _, label := range labels {
			byKind := outs[label]
			cells := []string{label}
			for _, k := range opts.Schedulers {
				var ratios []float64
				for sidx, so := range byKind[k].seeds {
					baseRuns := byKind[base].seeds[sidx].runs
					// Fixed-window runs serve different request counts;
					// compare accesses per served request.
					req, baseReq := metrics.SumRequests(so.runs), metrics.SumRequests(baseRuns)
					if req <= 0 || baseReq <= 0 {
						continue
					}
					var v, baseVal float64
					if panel.series == "total" {
						v, baseVal = metrics.SumTotal(so.runs)/req, metrics.SumTotal(baseRuns)/baseReq
					} else {
						v, baseVal = metrics.SumRemote(so.runs)/req, metrics.SumRemote(baseRuns)/baseReq
					}
					if baseVal > 0 {
						ratios = append(ratios, v/baseVal)
					}
				}
				norm := sim.Mean(ratios)
				r.Set(panel.series+"/"+schedLabel(k), label, norm)
				cells = append(cells, metrics.F(norm))
			}
			t.AddRow(cells...)
		}
		t.AddNote("normalized to %s = 1.0", base)
		r.Tables = append(r.Tables, t)
	}
	return r, nil
}

// redisClient models one redis-benchmark driver: a CPU-bound request
// generator with a small cache footprint.
func redisClient() *workload.Profile {
	return &workload.Profile{
		Name: "redis-benchmark", Suite: "server", TrueClass: workload.ClassFriendly,
		BaseCPI: 0.8,
		Phases: []workload.Phase{
			{Fraction: 1, RPTI: 1.2, WorkingSetKB: 512, SoloMissRate: 0.02, MaxMissRate: 0.2},
		},
		FootprintMB: 64, TotalInstructions: 1e18, TouchesPerPage: 1.5,
	}
}

func init() {
	register(&Experiment{
		ID:    "fig6",
		Title: "Memcached concurrency sweep",
		Paper: "Fig. 6: vProbe best; peak +31.3% at 80 calls; LB>VCPU-P at 16-32, crossover after",
		run:   runFig6,
	})
	register(&Experiment{
		ID:    "fig7",
		Title: "Redis connection sweep",
		Paper: "Fig. 7: vProbe best; +26.0% at 2000 conns; VCPU-P > LB throughout",
		run:   runFig7,
	})
}
