package eventswitch_test

import (
	"testing"

	"vprobe/internal/analysis/eventswitch"
	"vprobe/internal/analysis/framework/analysistest"
)

func TestEventSwitch(t *testing.T) {
	analysistest.Run(t, analysistest.TestData(), eventswitch.Analyzer, "eventswitch_a")
}
