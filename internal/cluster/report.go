package cluster

import (
	"fmt"
	"strings"

	"vprobe/internal/metrics"
	"vprobe/internal/sim"
)

// Report summarises one cluster run: admission outcomes, migration
// activity, and placement quality (remote-access ratio, utilization),
// cluster-wide and per host.
type Report struct {
	Policy    string
	Scheduler string
	Hosts     int
	Horizon   sim.Duration

	Arrivals   int
	Placed     int
	Retries    int
	Rejected   int
	Departed   int
	Migrations int

	// RejectionRate is Rejected/Arrivals.
	RejectionRate float64
	// RemoteRatio is the access-weighted remote-memory-access ratio over
	// every VCPU any host ever ran.
	RemoteRatio float64
	// Utilization is total PCPU busy time over Hosts*CPUs*Horizon.
	Utilization float64

	PerHost []HostReport
}

// HostReport is one host's slice of the run.
type HostReport struct {
	Name string
	// Placed counts cumulative placements (admissions + migrations in);
	// Resident is the live VM count at the horizon.
	Placed   int
	Resident int
	// RemoteRatio and Utilization are the host-local qualities.
	RemoteRatio float64
	Utilization float64
}

// report assembles the Report after the final host sync.
func (c *Cluster) report() *Report {
	r := &Report{
		Policy:     c.cfg.Policy,
		Scheduler:  string(c.cfg.Scheduler),
		Hosts:      len(c.hosts),
		Horizon:    c.cfg.Horizon,
		Arrivals:   c.stats.Arrivals,
		Placed:     c.stats.Placed,
		Retries:    c.stats.Retries,
		Rejected:   c.stats.Rejected,
		Departed:   c.stats.Departed,
		Migrations: c.stats.Migrations,
	}
	if r.Arrivals > 0 {
		r.RejectionRate = float64(r.Rejected) / float64(r.Arrivals)
	}
	var total, remote float64
	var busy sim.Duration
	var cpus int
	for _, ho := range c.hosts {
		t, rem := ho.counterTotals()
		total += t
		remote += rem
		hostBusy := ho.H.TotalBusyTime()
		busy += hostBusy
		cpus += ho.Top.NumCPUs()
		hr := HostReport{
			Name:        ho.Name,
			Placed:      ho.Placed,
			Resident:    len(ho.VMs),
			RemoteRatio: ho.remoteRatio(),
		}
		if c.cfg.Horizon > 0 {
			hr.Utilization = hostBusy.Seconds() /
				(float64(ho.Top.NumCPUs()) * c.cfg.Horizon.Seconds())
		}
		r.PerHost = append(r.PerHost, hr)
	}
	if total > 0 {
		r.RemoteRatio = remote / total
	}
	if cpus > 0 && c.cfg.Horizon > 0 {
		r.Utilization = busy.Seconds() / (float64(cpus) * c.cfg.Horizon.Seconds())
	}
	return r
}

// String renders the report as aligned tables.
func (r *Report) String() string {
	var b strings.Builder
	sum := metrics.NewTable(
		fmt.Sprintf("cluster: %d hosts, policy %s, per-host scheduler %s, %v horizon",
			r.Hosts, r.Policy, r.Scheduler, r.Horizon),
		"arrivals", "placed", "retries", "rejected", "departed", "migrations",
		"reject-rate", "remote-ratio", "utilization")
	sum.AddRow(
		fmt.Sprint(r.Arrivals), fmt.Sprint(r.Placed), fmt.Sprint(r.Retries),
		fmt.Sprint(r.Rejected), fmt.Sprint(r.Departed), fmt.Sprint(r.Migrations),
		metrics.Pct(r.RejectionRate), metrics.Pct(r.RemoteRatio),
		metrics.Pct(r.Utilization))
	b.WriteString(sum.String())

	ph := metrics.NewTable("per host", "host", "placed", "resident",
		"remote-ratio", "utilization")
	for _, h := range r.PerHost {
		ph.AddRow(h.Name, fmt.Sprint(h.Placed), fmt.Sprint(h.Resident),
			metrics.Pct(h.RemoteRatio), metrics.Pct(h.Utilization))
	}
	b.WriteString(ph.String())
	return b.String()
}
