package experiments

import (
	"context"
	"fmt"

	"vprobe/internal/cluster"
	"vprobe/internal/controlplane"
	"vprobe/internal/harness"
	"vprobe/internal/metrics"
	"vprobe/internal/sim"
)

// controlPlaneVariants are the admission-mechanism bundles the experiment
// compares. Every variant sees the byte-identical arrival stream (sizes,
// priorities, lifetimes, gang membership) — the generator draws gangs
// whenever GangFraction is positive regardless of the Gang toggle — so the
// comparison isolates what admission does with equal offered load.
var controlPlaneVariants = []struct {
	name string
	cfg  func(*cluster.Config)
}{
	{"none", func(*cluster.Config) {}},
	{"preempt", func(c *cluster.Config) { c.Preempt = true }},
	{"full", func(c *cluster.Config) {
		c.Preempt = true
		c.Gang = true
		c.Backfill = true
		c.DeschedulePeriod = 10 * sim.Second
	}},
}

// controlPlaneOutcome is one run's admission quality.
type controlPlaneOutcome struct {
	reject       float64
	weightedWait float64 // priority-weighted mean wait, seconds
	critWait     float64 // critical-class mean wait, seconds
	preemptions  float64
	gangs        float64
	backfills    float64
	desched      float64
}

// controlPlaneConfig is the shared overload scenario: a small cluster under
// sustained pressure (long-lived VMs at a high arrival rate), where the
// admission queue backs up and mechanism differences become visible.
func controlPlaneConfig(seed uint64, horizon sim.Duration) cluster.Config {
	return cluster.Config{
		Hosts:             3,
		Seed:              seed,
		ArrivalsPerSecond: 1.0,
		MeanLifetime:      horizon,
		Horizon:           horizon,
		GangFraction:      0.2,
		Workers:           1,
	}
}

// weightedWait folds the per-class mean waits into one number using the
// class weights (best-effort 1, standard 2, critical 4): the mean wait of
// a placed VM drawn with probability proportional to its class weight.
func weightedWait(rep *cluster.Report) float64 {
	var num, den float64
	for i, p := range rep.PerPriority {
		w := controlplane.Priority(i).Weight() * float64(p.Placed)
		num += w * p.MeanWait.Seconds()
		den += w
	}
	if den == 0 {
		return 0
	}
	return num / den
}

// runControlPlane compares cluster admission with the control plane off,
// with preemption alone, and with the full mechanism bundle (preemption,
// gang admission, backfill, descheduling) at equal offered load. It
// reports rejection rate, priority-weighted admission latency, the
// critical class's mean wait, and the mechanism activity counters.
func runControlPlane(ctx context.Context, opts Options) (*Result, error) {
	opts = opts.normalized()

	horizon := sim.Duration(float64(400*sim.Second) * opts.Scale)
	if opts.Horizon > 0 && horizon > opts.Horizon {
		horizon = opts.Horizon
	}

	type cell struct {
		variant int
		rep     int
	}
	var cells []cell
	for v := range controlPlaneVariants {
		for rep := 0; rep < opts.Repeats; rep++ {
			cells = append(cells, cell{v, rep})
		}
	}

	outs, err := harness.Map(ctx, harness.Workers(opts.Workers, len(cells)), len(cells),
		func(ctx context.Context, i int) (controlPlaneOutcome, error) {
			cl := cells[i]
			variant := controlPlaneVariants[cl.variant]
			// The seed depends on the repeat only: every variant of one
			// repeat admits the same arrival stream.
			cfg := controlPlaneConfig(
				harness.DeriveSeed(opts.Seed, "controlplane", fmt.Sprint(cl.rep)),
				horizon)
			variant.cfg(&cfg)
			c, err := cluster.New(cfg)
			if err != nil {
				return controlPlaneOutcome{}, err
			}
			rep, err := c.Run(ctx)
			if err != nil {
				return controlPlaneOutcome{}, fmt.Errorf("controlplane %s: %w", variant.name, err)
			}
			opts.emitScenario("controlplane/"+variant.name, sim.Time(horizon))
			out := controlPlaneOutcome{
				reject:       rep.RejectionRate,
				weightedWait: weightedWait(rep),
				preemptions:  float64(rep.Preemptions),
				gangs:        float64(rep.GangsAdmitted),
				backfills:    float64(rep.Backfills),
				desched:      float64(rep.DeschedMoves),
			}
			for _, p := range rep.PerPriority {
				if p.Class == "critical" {
					out.critWait = p.MeanWait.Seconds()
				}
			}
			return out, nil
		})
	if err != nil {
		return nil, err
	}

	r := &Result{ID: "cluster-controlplane", Title: "Cluster control-plane mechanisms at equal load"}
	t := metrics.NewTable(
		fmt.Sprintf("3 hosts, %v horizon, 1.0 arrivals/s, 20%% gangs (mean of %d seeds)",
			horizon, opts.Repeats),
		"mechanisms", "reject-rate", "weighted-wait", "crit-wait",
		"preempts", "gangs", "backfills", "desched")
	for v, variant := range controlPlaneVariants {
		var avg controlPlaneOutcome
		for i, cl := range cells {
			if cl.variant == v {
				avg.reject += outs[i].reject
				avg.weightedWait += outs[i].weightedWait
				avg.critWait += outs[i].critWait
				avg.preemptions += outs[i].preemptions
				avg.gangs += outs[i].gangs
				avg.backfills += outs[i].backfills
				avg.desched += outs[i].desched
			}
		}
		n := float64(opts.Repeats)
		avg.reject /= n
		avg.weightedWait /= n
		avg.critWait /= n
		avg.preemptions /= n
		avg.gangs /= n
		avg.backfills /= n
		avg.desched /= n

		r.Set("reject", variant.name, avg.reject)
		r.Set("weighted-wait", variant.name, avg.weightedWait)
		r.Set("crit-wait", variant.name, avg.critWait)
		r.Set("preemptions", variant.name, avg.preemptions)
		r.Set("gangs", variant.name, avg.gangs)
		r.Set("backfills", variant.name, avg.backfills)
		r.Set("desched", variant.name, avg.desched)
		t.AddRow(variant.name, metrics.Pct(avg.reject),
			fmt.Sprintf("%.2fs", avg.weightedWait), fmt.Sprintf("%.2fs", avg.critWait),
			metrics.F(avg.preemptions), metrics.F(avg.gangs),
			metrics.F(avg.backfills), metrics.F(avg.desched))
	}
	t.AddNote("weighted-wait: mean admission wait with placed VMs weighted 1/2/4 by priority class")
	t.AddNote("every variant admits the byte-identical arrival stream; only the mechanisms differ")
	r.Tables = append(r.Tables, t)
	return r, nil
}

func init() {
	register(&Experiment{
		ID:    "cluster-controlplane",
		Title: "Control-plane mechanisms: preemption, gangs, backfill, descheduling",
		Paper: "beyond the paper: priority-aware admission on a cluster of vProbe hosts",
		run:   runControlPlane,
	})
}
