package mem

import (
	"vprobe/internal/numa"
	"vprobe/internal/sim"
)

// Migrator implements the paper's §VI "page migration" future-work
// extension: lazily moving a fraction of an application's pages toward its
// current execution node. Migration has a cost — each moved megabyte burns
// CPU cycles and memory bandwidth — so the policy is rate-limited.
type Migrator struct {
	// RatePerSecond is the maximum fraction of an app's pages moved per
	// second of residency on a non-home node.
	RatePerSecond float64
	// CostPerMBCycles is the CPU cost charged to the migrating VCPU per
	// megabyte moved (page copy + remap, ~order 1e6 cycles/MB on the
	// Table I machine).
	CostPerMBCycles float64
	// MinRemoteFraction: only migrate when the remote fraction from the
	// current node exceeds this threshold (avoids churn near balance).
	MinRemoteFraction float64
}

// DefaultMigrator returns the configuration used by the ablation bench.
func DefaultMigrator() *Migrator {
	return &Migrator{
		RatePerSecond:     0.20,
		CostPerMBCycles:   1.2e6,
		MinRemoteFraction: 0.30,
	}
}

// Step advances migration for one application by elapsed time: it shifts
// pages toward node and returns the CPU cycles consumed doing so.
// footprintMB scales the cost. A nil Migrator performs nothing.
//
//vprobe:hotpath
func (m *Migrator) Step(d Dist, node numa.NodeID, elapsed sim.Duration, footprintMB int64) (cycles float64) {
	if m == nil || elapsed <= 0 {
		return 0
	}
	if d.RemoteFraction(node) < m.MinRemoteFraction {
		return 0
	}
	frac := m.RatePerSecond * elapsed.Seconds()
	if frac <= 0 {
		return 0
	}
	if frac > 1 {
		frac = 1
	}
	// Fraction of all pages that actually move.
	moved := d.RemoteFraction(node) * frac
	d.ShiftToward(node, frac)
	return moved * float64(footprintMB) * m.CostPerMBCycles
}

// FullCopyCycles is the cost of copying an entire memory image once — the
// transfer term of an inter-host live migration, where every page crosses
// the wire regardless of its NUMA placement. It reuses the per-megabyte
// page-copy cost so intra-host page migration and inter-host VM migration
// price memory movement consistently. A nil Migrator charges nothing.
func (m *Migrator) FullCopyCycles(footprintMB int64) float64 {
	if m == nil || footprintMB <= 0 {
		return 0
	}
	return float64(footprintMB) * m.CostPerMBCycles
}
