// Package mapiter_a is the mapiter fixture: each function exercises one
// flagged or deliberately-clean iteration shape.
package mapiter_a

import (
	"fmt"
	"sort"
)

// sortedKeys is the canonical keys-then-sort idiom: append feeds a sort, so
// the loop is clean.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// unsortedKeys leaks map order into the returned slice.
func unsortedKeys(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `append to keys inside map iteration without a later sort`
	}
	return keys
}

// printValues writes in randomized order.
func printValues(m map[string]int) {
	for k, v := range m {
		fmt.Println(k, v) // want `Println inside map iteration writes in randomized order`
	}
}

// sendValues publishes in randomized order.
func sendValues(m map[string]int, ch chan int) {
	for _, v := range m {
		ch <- v // want `channel send inside map iteration publishes values in randomized order`
	}
}

// floatSum accumulates floats in randomized order (non-associative).
func floatSum(m map[string]float64) float64 {
	var sum float64
	for _, v := range m {
		sum += v // want `floating-point accumulation into sum inside map iteration`
	}
	return sum
}

// intSum is exact integer arithmetic: commutative, clean.
func intSum(m map[string]int) int {
	var sum int
	for _, v := range m {
		sum += v
	}
	return sum
}

// suppressed carries the contract's escape hatch.
func suppressed(m map[string]int) []string {
	var keys []string
	//vet:ordered caller sorts before rendering
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

// sliceAppend ranges a slice, not a map: out of scope.
func sliceAppend(s []string) []string {
	var out []string
	for _, v := range s {
		out = append(out, v)
	}
	return out
}

// innerAppend appends to a slice born inside the loop body: clean.
func innerAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		local := make([]int, 0, len(vs))
		local = append(local, vs...)
		n += len(local)
	}
	return n
}

// sortSlice uses sort.Slice with a comparator: still recognized.
func sortSlice(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}
