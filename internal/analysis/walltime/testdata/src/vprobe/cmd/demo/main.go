// Command demo proves the cmd/ tree is exempt from walltime: front-ends
// may measure real execution time.
package main

import (
	"fmt"
	"time"
)

func main() {
	start := time.Now()
	fmt.Println(time.Since(start))
}
