package cluster

// The -place-check shadow mode: with Config.PlaceCheck set, every
// incremental placement decision is cross-validated against the
// pre-refactor full rescan. Two comparisons run per decision:
//
//  1. State: every host's cached view must equal a from-scratch
//     freshView snapshot, field by field — this catches a missed
//     markDirty or a drifting FreeIndex at the first event it matters.
//  2. Decision: the generic Pipeline.Place over the fresh views must
//     pick the same host, the same memory plan, and agree on
//     feasibility — this catches heap-order or cache-invalidation bugs.
//
// A divergence is a simulation-integrity failure: the run stops with a
// diagnostic naming the first differing field. The mode costs O(hosts)
// per decision — it exists to prove the O(dirty) path right, not to run
// in production sweeps.

import (
	"errors"
	"fmt"
	"math"

	"vprobe/internal/numa"
)

// checkPlacement validates one incremental decision against the full
// rescan. Called from Cluster.place when PlaceCheck is on.
func (c *Cluster) checkPlacement(spec *VMSpec, hv *HostView, plan MemPlan, err error) {
	if c.err != nil {
		return
	}
	//vet:alloc the place-check shadow path deliberately pays full-rescan cost; it is diagnostic-only and off by default
	fresh := make([]*HostView, len(c.hosts))
	for i, ho := range c.hosts {
		fresh[i] = ho.freshView(c.cfg.Overcommit)
		if diff := diffViews(&ho.view, fresh[i]); diff != "" {
			//vet:alloc divergence reporting runs once, immediately before the run stops
			c.failCheck("host %s cached view diverged from full rescan: %s", ho.Name, diff)
			return
		}
	}
	wantHV, wantPlan, wantErr := c.pipeline.Place(spec, fresh)
	if (err != nil) != (wantErr != nil) {
		//vet:alloc divergence reporting runs once, immediately before the run stops
		c.failCheck("spec %s: incremental err=%v, full rescan err=%v", spec.Name, err, wantErr)
		return
	}
	if err != nil {
		if !errors.Is(err, ErrNoHostFits) || !errors.Is(wantErr, ErrNoHostFits) {
			//vet:alloc divergence reporting runs once, immediately before the run stops
			c.failCheck("spec %s: failure kind mismatch: incremental %v, full rescan %v",
				spec.Name, err, wantErr)
		}
		return
	}
	if hv.Index != wantHV.Index {
		//vet:alloc divergence reporting runs once, immediately before the run stops
		c.failCheck("spec %s: incremental picked %s, full rescan picked %s",
			spec.Name, hv.Name, wantHV.Name)
		return
	}
	if plan != wantPlan {
		//vet:alloc divergence reporting runs once, immediately before the run stops
		c.failCheck("spec %s on %s: incremental plan %+v, full rescan plan %+v",
			spec.Name, hv.Name, plan, wantPlan)
	}
}

// failCheck records a shadow-check divergence and stops the run.
func (c *Cluster) failCheck(format string, args ...any) {
	//vet:alloc divergence reporting runs once, immediately before the run stops
	c.err = fmt.Errorf("cluster: place-check: "+format, args...)
	c.engine.Stop()
}

// diffViews compares a cached view against a fresh snapshot and names the
// first differing field ("" when identical). Float fields compare exactly:
// the cached path recomputes them from the same inputs with the same
// arithmetic, so any difference — even one ULP — is a missed refresh.
func diffViews(cached, fresh *HostView) string {
	switch {
	case cached.Index != fresh.Index:
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("Index %d != %d", cached.Index, fresh.Index)
	case cached.Name != fresh.Name:
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("Name %q != %q", cached.Name, fresh.Name)
	case cached.Nodes != fresh.Nodes:
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("Nodes %d != %d", cached.Nodes, fresh.Nodes)
	case cached.CPUs != fresh.CPUs:
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("CPUs %d != %d", cached.CPUs, fresh.CPUs)
	case cached.FreeMB != fresh.FreeMB:
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("FreeMB %d != %d", cached.FreeMB, fresh.FreeMB)
	case cached.TotalMB != fresh.TotalMB:
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("TotalMB %d != %d", cached.TotalMB, fresh.TotalMB)
	case cached.GuestVCPUs != fresh.GuestVCPUs:
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("GuestVCPUs %d != %d", cached.GuestVCPUs, fresh.GuestVCPUs)
	case cached.VCPUCap != fresh.VCPUCap:
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("VCPUCap %d != %d", cached.VCPUCap, fresh.VCPUCap)
	case cached.VMs != fresh.VMs:
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("VMs %d != %d", cached.VMs, fresh.VMs)
	case !floatEq(cached.LLCPressure, fresh.LLCPressure):
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("LLCPressure %v != %v", cached.LLCPressure, fresh.LLCPressure)
	case !floatEq(cached.RemoteRatio, fresh.RemoteRatio):
		//vet:alloc first-difference rendering happens at most once per run, on the failure path
		return fmt.Sprintf("RemoteRatio %v != %v", cached.RemoteRatio, fresh.RemoteRatio)
	}
	for n := range fresh.FreePerNodeMB {
		if cached.FreePerNodeMB[n] != fresh.FreePerNodeMB[n] {
			//vet:alloc first-difference rendering happens at most once per run, on the failure path
			return fmt.Sprintf("FreePerNodeMB[%d] %d != %d",
				n, cached.FreePerNodeMB[n], fresh.FreePerNodeMB[n])
		}
		if got := cached.FreeIdx.FreeMB(numa.NodeID(n)); got != fresh.FreePerNodeMB[n] {
			//vet:alloc first-difference rendering happens at most once per run, on the failure path
			return fmt.Sprintf("FreeIdx[%d] %d != %d", n, got, fresh.FreePerNodeMB[n])
		}
	}
	return ""
}

// floatEq is bitwise float equality (NaN-safe): the check demands exact
// recomputation, not tolerance.
func floatEq(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}
