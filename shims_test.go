package vprobe_test

import (
	"testing"
	"time"

	"vprobe"
)

// TestTraceAndEventsFanOutTogether asserts the deprecated Config.Trace hook
// and a typed Events sink can be set simultaneously and both observe the
// full stream: same event count, and every trace line is the Detail of the
// corresponding typed event.
func TestTraceAndEventsFanOutTogether(t *testing.T) {
	var lines []string
	var details []string
	sim, err := vprobe.NewSimulator(vprobe.Config{
		Seed: 4,
		Trace: func(at time.Duration, line string) {
			lines = append(lines, line)
		},
		Events: vprobe.EventFunc(func(ev vprobe.Event) {
			details = append(details, ev.Detail)
		}),
	})
	if err != nil {
		t.Fatal(err)
	}
	vm, err := sim.AddVM(vprobe.VMConfig{Name: "vm", MemoryMB: 2 * 1024, VCPUs: 1})
	if err != nil {
		t.Fatal(err)
	}
	if err := vm.RunApp("soplex"); err != nil {
		t.Fatal(err)
	}
	if _, err := sim.Run(500 * time.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(lines) == 0 {
		t.Fatal("Trace hook saw nothing")
	}
	if len(lines) != len(details) {
		t.Fatalf("Trace saw %d lines, Events saw %d", len(lines), len(details))
	}
	for i := range lines {
		if lines[i] != details[i] {
			t.Fatalf("record %d diverges:\n  trace:  %s\n  events: %s", i, lines[i], details[i])
		}
	}
}

// TestRunServerMemcachedMatchesTyped asserts the deprecated
// RunServer("memcached", ...) shim is indistinguishable from the typed
// RunMemcached helper.
func TestRunServerMemcachedMatchesTyped(t *testing.T) {
	build := func(attach func(vm *vprobe.VM) error) *vprobe.Report {
		t.Helper()
		sim, err := vprobe.NewSimulator(vprobe.Config{Seed: 6})
		if err != nil {
			t.Fatal(err)
		}
		vm, err := sim.AddVM(vprobe.VMConfig{
			Name: "srv", MemoryMB: 8 * 1024, VCPUs: 4, FillGuestIdle: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if err := attach(vm); err != nil {
			t.Fatal(err)
		}
		rep, err := sim.Run(2 * time.Second)
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	typed := build(func(vm *vprobe.VM) error { return vm.RunMemcached(64) })
	shim := build(func(vm *vprobe.VM) error { return vm.RunServer("memcached", 64) })
	if typed.TotalRequests() <= 0 {
		t.Fatal("memcached served no requests")
	}
	if typed.TotalRequests() != shim.TotalRequests() {
		t.Fatalf("RunMemcached (%v reqs) and RunServer shim (%v reqs) diverge",
			typed.TotalRequests(), shim.TotalRequests())
	}
	if typed.String() != shim.String() {
		t.Fatal("typed and shim reports render differently")
	}
}
